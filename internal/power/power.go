// Package power represents per-cell heat dissipation maps of the active
// (source) layers and provides the synthetic floorplan generators used to
// stand in for the ICCAD 2015 contest power maps (see DESIGN.md,
// "Substitutions").
package power

import (
	"fmt"
	"math"
	"math/rand"

	"lcn3d/internal/grid"
)

// Map holds the dissipated power of every basic cell of one source
// layer, in watts.
type Map struct {
	Dims grid.Dims
	W    []float64 // row-major, len Dims.N()
}

// New returns an all-zero power map.
func New(d grid.Dims) *Map {
	return &Map{Dims: d, W: make([]float64, d.N())}
}

// At returns the power of cell (x, y).
func (m *Map) At(x, y int) float64 { return m.W[m.Dims.Index(x, y)] }

// Set assigns the power of cell (x, y).
func (m *Map) Set(x, y int, w float64) { m.W[m.Dims.Index(x, y)] = w }

// Total returns the summed power of the map, in watts.
func (m *Map) Total() float64 {
	var s float64
	for _, v := range m.W {
		s += v
	}
	return s
}

// Max returns the largest cell power.
func (m *Map) Max() float64 {
	var mx float64
	for _, v := range m.W {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	c := New(m.Dims)
	copy(c.W, m.W)
	return c
}

// ScaleTo rescales the map so that Total() == total. It panics if the map
// is identically zero and total is nonzero.
func (m *Map) ScaleTo(total float64) {
	cur := m.Total()
	if cur == 0 {
		if total == 0 {
			return
		}
		panic("power: cannot scale a zero map to a nonzero total")
	}
	f := total / cur
	for i := range m.W {
		m.W[i] *= f
	}
}

// AddUniform adds w watts spread uniformly over all cells.
func (m *Map) AddUniform(w float64) {
	per := w / float64(len(m.W))
	for i := range m.W {
		m.W[i] += per
	}
}

// AddGaussian adds a Gaussian hotspot of total power w centered at
// (cx, cy) with standard deviation sigma (in cells). The blob is
// normalized over the grid so the added total is exactly w.
func (m *Map) AddGaussian(cx, cy, sigma, w float64) {
	if sigma <= 0 {
		panic(fmt.Sprintf("power: invalid sigma %g", sigma))
	}
	weights := make([]float64, len(m.W))
	var sum float64
	for y := 0; y < m.Dims.NY; y++ {
		for x := 0; x < m.Dims.NX; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			g := math.Exp(-(dx*dx + dy*dy) / (2 * sigma * sigma))
			weights[m.Dims.Index(x, y)] = g
			sum += g
		}
	}
	for i := range m.W {
		m.W[i] += w * weights[i] / sum
	}
}

// AddBlock adds w watts spread uniformly over the rectangle
// [x0, x1) x [y0, y1), clipped to the grid.
func (m *Map) AddBlock(x0, y0, x1, y1 int, w float64) {
	x0, y0 = max(x0, 0), max(y0, 0)
	x1, y1 = min(x1, m.Dims.NX), min(y1, m.Dims.NY)
	n := (x1 - x0) * (y1 - y0)
	if n <= 0 {
		return
	}
	per := w / float64(n)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			m.W[m.Dims.Index(x, y)] += per
		}
	}
}

// Aggregate sums the map into the coarse cells of a tiling, returning a
// coarse power map (used by the 2RM model).
func (m *Map) Aggregate(t *grid.Tiling) *Map {
	if t.Fine != m.Dims {
		panic(fmt.Sprintf("power: tiling fine dims %v != map dims %v", t.Fine, m.Dims))
	}
	c := New(t.Coarse)
	for cy := 0; cy < t.Coarse.NY; cy++ {
		for cx := 0; cx < t.Coarse.NX; cx++ {
			var s float64
			t.EachFine(cx, cy, func(x, y int) { s += m.At(x, y) })
			c.Set(cx, cy, s)
		}
	}
	return c
}

// Hotspots generates a reproducible hotspot-style floorplan: background
// power plus n Gaussian hotspots at pseudo-random positions, scaled to
// the requested total. The layout depends only on the seed.
//
// contrast in (0, 1) sets the fraction of the power concentrated in the
// hotspots; the rest is uniform background (typical published MPSoC maps
// put 50-80 % of the power in cores occupying a small area fraction).
func Hotspots(d grid.Dims, seed int64, n int, contrast, total float64) *Map {
	return HotspotsSigma(d, seed, n, contrast, 0.03, 0.10, total)
}

// HotspotsSigma is Hotspots with explicit control over the hotspot size:
// each hotspot's standard deviation is drawn uniformly from
// [sigmaLo, sigmaHi] x max(NX, NY) cells. Smaller fractions give sharper,
// harder-to-cool hotspots.
func HotspotsSigma(d grid.Dims, seed int64, n int, contrast, sigmaLo, sigmaHi, total float64) *Map {
	if contrast < 0 || contrast > 1 {
		panic(fmt.Sprintf("power: contrast %g out of [0,1]", contrast))
	}
	if sigmaLo <= 0 || sigmaHi < sigmaLo {
		panic(fmt.Sprintf("power: invalid sigma range [%g, %g]", sigmaLo, sigmaHi))
	}
	rng := rand.New(rand.NewSource(seed))
	m := New(d)
	m.AddUniform((1 - contrast) * total)
	if n > 0 {
		per := contrast * total / float64(n)
		for i := 0; i < n; i++ {
			cx := (0.15 + 0.7*rng.Float64()) * float64(d.NX-1)
			cy := (0.15 + 0.7*rng.Float64()) * float64(d.NY-1)
			sigma := (sigmaLo + (sigmaHi-sigmaLo)*rng.Float64()) * float64(max(d.NX, d.NY))
			m.AddGaussian(cx, cy, sigma, per)
		}
	}
	m.ScaleTo(total)
	return m
}

// CoreGrid generates an MPSoC-style floorplan: square cores of a fixed
// absolute size on a regular lattice with the given pitch (both in
// cells), jittered by up to 2 cells per core from the seed, over a
// uniform background. contrast sets the fraction of the total power
// dissipated inside the cores. Because core size and pitch are absolute,
// the local thermal structure — and therefore a benchmark's feasibility
// class — is the same at reduced and full grid scale (unlike random
// hotspot placement, whose extremes grow with the sample count).
func CoreGrid(d grid.Dims, seed int64, corePitch, coreSize int, contrast, total float64) *Map {
	if corePitch < 2 || coreSize < 1 || coreSize > corePitch {
		panic(fmt.Sprintf("power: invalid core grid pitch=%d size=%d", corePitch, coreSize))
	}
	if contrast < 0 || contrast > 1 {
		panic(fmt.Sprintf("power: contrast %g out of [0,1]", contrast))
	}
	rng := rand.New(rand.NewSource(seed))
	m := New(d)
	m.AddUniform((1 - contrast) * total)
	ncx := max(1, d.NX/corePitch)
	ncy := max(1, d.NY/corePitch)
	per := contrast * total / float64(ncx*ncy)
	for cy := 0; cy < ncy; cy++ {
		for cx := 0; cx < ncx; cx++ {
			x0 := cx*corePitch + (corePitch-coreSize)/2 + rng.Intn(5) - 2
			y0 := cy*corePitch + (corePitch-coreSize)/2 + rng.Intn(5) - 2
			x0 = min(max(x0, 0), d.NX-coreSize)
			y0 = min(max(y0, 0), d.NY-coreSize)
			m.AddBlock(x0, y0, x0+coreSize, y0+coreSize, per)
		}
	}
	m.ScaleTo(total)
	return m
}

// Gradient generates a map whose density ramps linearly along +x from
// lo to hi relative weight, scaled to the requested total. Useful for
// exercising the paper's "factor 2" (non-uniform source distribution).
func Gradient(d grid.Dims, lo, hi, total float64) *Map {
	m := New(d)
	for y := 0; y < d.NY; y++ {
		for x := 0; x < d.NX; x++ {
			t := float64(x) / float64(max(d.NX-1, 1))
			m.Set(x, y, lo+(hi-lo)*t)
		}
	}
	m.ScaleTo(total)
	return m
}

// Checker generates an alternating-block map (period cells per block)
// with the given high:low density ratio, scaled to total. It stresses
// lateral thermal coupling.
func Checker(d grid.Dims, period int, ratio, total float64) *Map {
	if period < 1 {
		period = 1
	}
	m := New(d)
	for y := 0; y < d.NY; y++ {
		for x := 0; x < d.NX; x++ {
			if ((x/period)+(y/period))%2 == 0 {
				m.Set(x, y, ratio)
			} else {
				m.Set(x, y, 1)
			}
		}
	}
	m.ScaleTo(total)
	return m
}
