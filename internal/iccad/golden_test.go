package iccad

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"lcn3d/internal/core"
	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/thermal"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures under testdata/")

// goldenDims is the fixture scale: small enough that both models solve
// in well under a second, large enough that the thermal field has
// structure (gradients, hot corners) worth pinning.
var goldenDims = grid.Dims{NX: 15, NY: 15}

const goldenCoarseM = 3

// goldenEval is the persisted slice of an EvalResult. Probe counts are
// deliberately excluded: they are search-implementation detail, and the
// corpus pins physics, not bisection schedules.
type goldenEval struct {
	Feasible bool     `json:"feasible"`
	Psys     *float64 `json:"psys,omitempty"`
	Wpump    *float64 `json:"wpump,omitempty"`
	DeltaT   *float64 `json:"delta_t,omitempty"`
	Tmax     *float64 `json:"tmax,omitempty"`
}

type goldenFixture struct {
	Name        string     `json:"name"`
	Case        int        `json:"case"`
	Problem     int        `json:"problem"`
	NetworkHash string     `json:"network_hash"`
	RM2         goldenEval `json:"rm2"`
	RM4         goldenEval `json:"rm4"`
}

func finite(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

func toGoldenEval(ev core.EvalResult) goldenEval {
	g := goldenEval{Feasible: ev.Feasible, Psys: finite(ev.Psys),
		Wpump: finite(ev.Wpump), DeltaT: finite(ev.DeltaT)}
	if ev.Out != nil {
		g.Tmax = finite(ev.Out.Tmax)
	}
	return g
}

// goldenCase describes one fixture: which benchmark, which network
// family, and which problem's evaluation procedure scores it.
type goldenCase struct {
	name    string
	caseID  int
	problem int
	build   func(b *Benchmark) *network.Network
}

func straightWest(b *Benchmark) *network.Network {
	n := network.Straight(b.Stk.Dims, grid.SideWest, 1)
	b.ApplyKeepout(n)
	return n
}

// goldenCases spans the benchmark contract: all five power maps, both
// problems' evaluation procedures, straight channels plus a branching
// tree, and the keepout detour of case 3.
var goldenCases = []goldenCase{
	{name: "case1_straight_p1", caseID: 1, problem: 1, build: straightWest},
	{name: "case2_straight_p1", caseID: 2, problem: 1, build: straightWest},
	{name: "case3_keepout_p1", caseID: 3, problem: 1, build: straightWest},
	{name: "case4_straight_p1", caseID: 4, problem: 1, build: straightWest},
	// Case 5 is Problem-1 infeasible for straight channels, so its
	// fixture pins the Problem 2 (gradient-minimizing) procedure, which
	// is feasible on every case.
	{name: "case5_straight_p2", caseID: 5, problem: 2, build: straightWest},
	{name: "case1_tree_p1", caseID: 1, problem: 1, build: func(b *Benchmark) *network.Network {
		spec := network.UniformTreeSpec(b.Stk.Dims, 2, network.Branch2, 0.5, 0.5)
		n, err := network.Tree(b.Stk.Dims, spec)
		if err != nil {
			panic(fmt.Sprintf("golden tree fixture: %v", err))
		}
		return n
	}},
}

// evalGolden runs one fixture's evaluation with the given simulator.
func evalGolden(t *testing.T, b *Benchmark, sim core.SimFunc, problem int) core.EvalResult {
	t.Helper()
	ctx := context.Background()
	// Bounding the search keeps any infeasible probe sequence short;
	// every feasible operating point in the corpus sits far below this.
	opt := core.SearchOptions{PMax: 3e5}
	var ev core.EvalResult
	var err error
	if problem == 1 {
		ev, err = core.EvaluatePumpMin(ctx, sim, b.DeltaTStar, b.TmaxStar, opt)
	} else {
		var out *thermal.Outcome
		out, err = sim(10e3)
		if err == nil {
			budget := core.PressureBudget(b.WpumpStar, out.Rsys)
			ev, err = core.EvaluateGradMin(ctx, sim, b.TmaxStar, budget, opt)
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func computeFixture(t *testing.T, gc goldenCase) goldenFixture {
	t.Helper()
	b, err := LoadScaled(gc.caseID, goldenDims)
	if err != nil {
		t.Fatal(err)
	}
	n := gc.build(b)
	if errs := n.Check(); len(errs) > 0 {
		t.Fatalf("fixture %s network illegal: %v", gc.name, errs)
	}
	sim2, err := b.Sim2RM(n, goldenCoarseM, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	sim4, err := b.Sim4RM(n, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	return goldenFixture{
		Name:        gc.name,
		Case:        gc.caseID,
		Problem:     gc.problem,
		NetworkHash: n.CanonicalHash(),
		RM2:         toGoldenEval(evalGolden(t, b, sim2, gc.problem)),
		RM4:         toGoldenEval(evalGolden(t, b, sim4, gc.problem)),
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden_"+name+".json")
}

// relDiff is |a-b| relative to the larger magnitude (0 when both zero).
func relDiff(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}

func checkEval(t *testing.T, fixture, model string, got, want goldenEval) {
	t.Helper()
	if got.Feasible != want.Feasible {
		t.Errorf("%s %s: feasible = %v, want %v", fixture, model, got.Feasible, want.Feasible)
		return
	}
	// The corpus regression tolerance: tight enough to catch a model or
	// search change, loose enough to survive benign float reassociation
	// (e.g. a different but equivalent summation order in the solver).
	const tol = 1e-6
	fields := []struct {
		name      string
		got, want *float64
	}{
		{"psys", got.Psys, want.Psys},
		{"wpump", got.Wpump, want.Wpump},
		{"delta_t", got.DeltaT, want.DeltaT},
		{"tmax", got.Tmax, want.Tmax},
	}
	for _, f := range fields {
		if (f.got == nil) != (f.want == nil) {
			t.Errorf("%s %s: %s finiteness changed (got %v, want %v)", fixture, model, f.name, f.got, f.want)
			continue
		}
		if f.got == nil {
			continue
		}
		if d := relDiff(*f.got, *f.want); d > tol {
			t.Errorf("%s %s: %s = %.12g, golden %.12g (rel diff %.3g > %g)",
				fixture, model, f.name, *f.got, *f.want, d, tol)
		}
	}
}

// TestGoldenCorpus recomputes every fixture with both thermal models and
// compares against the committed goldens. Run with -update to rewrite
// them after an intentional physics or search change.
func TestGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluates 2RM and 4RM fixtures")
	}
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			t.Parallel()
			got := computeFixture(t, gc)
			path := goldenPath(gc.name)
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			var want goldenFixture
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			if got.NetworkHash != want.NetworkHash {
				t.Fatalf("%s: fixture network hash %s, golden %s — the fixture generator changed",
					gc.name, got.NetworkHash, want.NetworkHash)
			}
			checkEval(t, gc.name, "2rm", got.RM2, want.RM2)
			checkEval(t, gc.name, "4rm", got.RM4, want.RM4)
		})
	}
}

// TestGoldenModelAgreement is the differential check behind the paper's
// accuracy claim: the coarse 2RM model must track the accurate 4RM model
// closely enough to steer the optimizer. Bounds are empirical for this
// corpus with roughly 2x margin; a regression that widens the gap beyond
// them means the coarse model has stopped being a usable surrogate.
func TestGoldenModelAgreement(t *testing.T) {
	for _, gc := range goldenCases {
		data, err := os.ReadFile(goldenPath(gc.name))
		if err != nil {
			t.Fatalf("missing golden (run TestGoldenCorpus with -update): %v", err)
		}
		var fx goldenFixture
		if err := json.Unmarshal(data, &fx); err != nil {
			t.Fatal(err)
		}
		if fx.RM2.Feasible != fx.RM4.Feasible {
			t.Errorf("%s: models disagree on feasibility (2rm=%v, 4rm=%v)",
				fx.Name, fx.RM2.Feasible, fx.RM4.Feasible)
			continue
		}
		if !fx.RM2.Feasible {
			continue
		}
		type bound struct {
			name     string
			rm2, rm4 *float64
			maxRel   float64
		}
		for _, b := range []bound{
			// The chosen operating point and its pumping power reflect
			// where each model's constraint curve crosses the limits.
			{"psys", fx.RM2.Psys, fx.RM4.Psys, 0.35},
			{"wpump", fx.RM2.Wpump, fx.RM4.Wpump, 0.60},
			// The physical fields themselves agree much more tightly.
			{"delta_t", fx.RM2.DeltaT, fx.RM4.DeltaT, 0.30},
			{"tmax", fx.RM2.Tmax, fx.RM4.Tmax, 0.03},
		} {
			if b.rm2 == nil || b.rm4 == nil {
				continue
			}
			if d := relDiff(*b.rm2, *b.rm4); d > b.maxRel {
				t.Errorf("%s: 2RM-vs-4RM %s diverges: %.6g vs %.6g (rel %.3g > %.2g)",
					fx.Name, b.name, *b.rm2, *b.rm4, d, b.maxRel)
			}
		}
	}
}
