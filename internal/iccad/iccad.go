// Package iccad reconstructs the five ICCAD 2015 contest benchmark cases
// of paper Table 2. The original contest floorplan/power files are not
// publicly archived, so the power maps are synthetic hotspot-style
// layouts that reproduce every published statistic — die count, channel
// height, total die power, the ΔT*/T*_max constraints, case 3's
// channel keepout region, case 4's matched inlets/outlets, and case 5's
// high, highly varied power (see DESIGN.md "Substitutions").
package iccad

import (
	"fmt"

	"lcn3d/internal/core"
	"lcn3d/internal/grid"
	"lcn3d/internal/power"
	"lcn3d/internal/stack"
)

// FullDims is the contest die: 10.1 mm x 10.1 mm at 100 µm basic cells.
var FullDims = grid.Dims{NX: 101, NY: 101}

// Spec mirrors one row of paper Table 2.
type Spec struct {
	ID            int
	Dies          int
	ChannelHeight float64 // h_c, m
	DiePower      float64 // total, W
	DeltaTStar    float64 // K
	TmaxStar      float64 // K
	Other         string
}

// Table2 lists the five benchmark specifications exactly as published.
var Table2 = []Spec{
	{ID: 1, Dies: 2, ChannelHeight: 200e-6, DiePower: 42.038, DeltaTStar: 15, TmaxStar: 358.15, Other: "-"},
	{ID: 2, Dies: 2, ChannelHeight: 400e-6, DiePower: 37.038, DeltaTStar: 10, TmaxStar: 358.15, Other: "-"},
	{ID: 3, Dies: 2, ChannelHeight: 400e-6, DiePower: 43.038, DeltaTStar: 15, TmaxStar: 358.15, Other: "no channel in a restricted area"},
	{ID: 4, Dies: 3, ChannelHeight: 200e-6, DiePower: 43.438, DeltaTStar: 10, TmaxStar: 358.15, Other: "matched inlets/outlets across layers"},
	{ID: 5, Dies: 2, ChannelHeight: 400e-6, DiePower: 148.174, DeltaTStar: 10, TmaxStar: 338.15, Other: "-"},
}

// Benchmark is a loaded case ready for optimization.
type Benchmark struct {
	core.Instance
	Spec Spec
}

// Load builds benchmark case id (1-5) at full contest scale.
func Load(id int) (*Benchmark, error) { return LoadScaled(id, FullDims) }

// LoadScaled builds benchmark case id on a smaller grid for quick runs.
// Total power is scaled with chip area so the areal power density — and
// therefore the temperature regime — matches the full-size case.
func LoadScaled(id int, dims grid.Dims) (*Benchmark, error) {
	if id < 1 || id > len(Table2) {
		return nil, fmt.Errorf("iccad: case %d outside 1..%d", id, len(Table2))
	}
	sp := Table2[id-1]
	areaScale := float64(dims.NX*dims.NY) / float64(FullDims.NX*FullDims.NY)
	total := sp.DiePower * areaScale

	// Power maps use structures with a fixed *absolute* feature size (in
	// basic cells ≙ mm), so the local thermal physics — and therefore
	// each case's feasibility regime — is the same at reduced and full
	// scale. Cases 1-4 are MPSoC-style jittered core grids; case 5 adds
	// wide hot regions and a strong gradient ("high and highly varied").
	maxDim := float64(max(dims.NX, dims.NY))
	sig := func(cells float64) float64 { return cells / maxDim }
	count := func(nFull int) int { return max(2, int(float64(nFull)*areaScale+0.5)) }

	maps := make([]*power.Map, sp.Dies)
	perDie := total / float64(sp.Dies)
	for die := 0; die < sp.Dies; die++ {
		seed := int64(id*1000 + die)
		switch id {
		case 5:
			// Tuned so that (as in the paper) no straight baseline is
			// feasible under Problem 1 while Problem 2's budget remains
			// workable.
			m := power.HotspotsSigma(dims, seed, count(16), 0.38, sig(6), sig(10), perDie*0.62)
			g := power.Gradient(dims, 1, 6, perDie*0.38)
			for i := range m.W {
				m.W[i] += g.W[i]
			}
			// A nearly unpowered I/O margin along the west edge (fixed
			// absolute width). Its cold cells keep the straight-channel
			// ΔT floor above ΔT* at every scale — the structural reason
			// case 5 is Problem-1 infeasible for rigid topologies —
			// without adding anything to T_max.
			strip := min(8, dims.NX/6)
			for y := 0; y < dims.NY; y++ {
				for x := 0; x < strip; x++ {
					m.W[dims.Index(x, y)] *= 0.15
				}
			}
			m.ScaleTo(perDie)
			maps[die] = m
		case 4:
			// Three thinner dies with a milder core grid: the tight
			// ΔT* = 10 K must stay reachable for dense straight channels.
			maps[die] = power.CoreGrid(dims, seed, 16, 8, 0.42, perDie)
		case 2:
			maps[die] = power.CoreGrid(dims, seed, 16, 8, 0.48, perDie)
		default:
			maps[die] = power.CoreGrid(dims, seed, 16, 8, 0.58, perDie)
		}
	}
	stk, err := stack.NewDieStack(stack.Config{
		Dims:          dims,
		ChannelHeight: sp.ChannelHeight,
	}, maps)
	if err != nil {
		return nil, fmt.Errorf("iccad: case %d: %w", id, err)
	}
	b := &Benchmark{
		Instance: core.Instance{
			Name:       fmt.Sprintf("iccad2015-case%d", id),
			Stk:        stk,
			DeltaTStar: sp.DeltaTStar,
			TmaxStar:   sp.TmaxStar,
			// Problem 2 uses W*_pump = 0.1% of the die power (paper
			// Section 6).
			WpumpStar: 0.001 * total,
		},
		Spec: sp,
	}
	if id == 3 {
		// Restricted area: a rectangle in the east-central region
		// (scaled with the grid), kept off the chip edges.
		x0 := dims.NX * 45 / 101
		x1 := dims.NX * 65 / 101
		y0 := dims.NY * 25 / 101
		y1 := dims.NY * 45 / 101
		b.Keepout = &[4]int{x0, y0, x1, y1}
	}
	return b, nil
}

// LoadAll returns all five cases at the given scale.
func LoadAll(dims grid.Dims) ([]*Benchmark, error) {
	out := make([]*Benchmark, 0, len(Table2))
	for id := 1; id <= len(Table2); id++ {
		b, err := LoadScaled(id, dims)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
