package iccad

import (
	"context"
	"testing"

	"lcn3d/internal/core"
	"lcn3d/internal/grid"
	"lcn3d/internal/thermal"
)

// TestFeasibilityClasses pins the benchmark contract that makes the
// paper's Tables 3 and 4 reproducible: under Problem 1 the straight
// baseline is feasible on cases 1-4 and infeasible on case 5; under
// Problem 2 every case is feasible. Verified at the 51x51 quick scale
// (the generator's fixed absolute feature sizes keep the classes stable
// across scales; see power.CoreGrid).
func TestFeasibilityClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluates 4RM baselines for all cases")
	}
	d := grid.Dims{NX: 51, NY: 51}
	// Bounding the pressure search keeps the infeasible case-5 probes
	// from sweeping to the default 10 MPa ceiling; feasibility verdicts
	// are unaffected (every feasible operating point sits below 50 kPa).
	opts := core.SearchOptions{PMax: 3e5}
	for id := 1; id <= 5; id++ {
		b, err := LoadScaled(id, d)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := b.BestStraightBaseline(context.Background(), 1, thermal.Central, opts)
		if err != nil {
			t.Fatalf("case %d P1: %v", id, err)
		}
		wantP1 := id != 5
		if p1.Eval.Feasible != wantP1 {
			t.Errorf("case %d: Problem 1 straight feasibility = %v, want %v (ΔT=%.2f)",
				id, p1.Eval.Feasible, wantP1, p1.Eval.DeltaT)
		}
		p2, err := b.BestStraightBaseline(context.Background(), 2, thermal.Central, opts)
		if err != nil {
			t.Fatalf("case %d P2: %v", id, err)
		}
		if !p2.Eval.Feasible {
			t.Errorf("case %d: Problem 2 straight baseline should be feasible", id)
		}
		if p2.Eval.Wpump > b.WpumpStar*(1+1e-6) {
			t.Errorf("case %d: P2 spend %.3g exceeds budget %.3g", id, p2.Eval.Wpump, b.WpumpStar)
		}
	}
}
