package iccad

import (
	"encoding/json"
	"os"
	"testing"

	"lcn3d/internal/thermal"
)

// TestGoldenMultigridEquivalence recomputes every golden fixture with the
// two-level multigrid preconditioner forced on (the fixtures are small
// enough that PrecondAuto would route them to ILU(0)) and checks the
// results against the committed goldens at the corpus tolerance. This is
// the equivalence contract for the multigrid path: same physics, same
// search outcome, only the preconditioner differs.
func TestGoldenMultigridEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluates 2RM and 4RM fixtures under multigrid")
	}
	prev := thermal.GetPrecondStrategy()
	thermal.SetPrecondStrategy(thermal.PrecondMG)
	// Parent Cleanup runs after all parallel subtests finish, so the
	// global strategy stays forced for their whole lifetime.
	t.Cleanup(func() { thermal.SetPrecondStrategy(prev) })
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(goldenPath(gc.name))
			if err != nil {
				t.Fatalf("missing golden (run TestGoldenCorpus with -update): %v", err)
			}
			var want goldenFixture
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			got := computeFixture(t, gc)
			if got.NetworkHash != want.NetworkHash {
				t.Fatalf("%s: fixture network hash %s, golden %s — the fixture generator changed",
					gc.name, got.NetworkHash, want.NetworkHash)
			}
			checkEval(t, gc.name, "2rm/multigrid", got.RM2, want.RM2)
			checkEval(t, gc.name, "4rm/multigrid", got.RM4, want.RM4)
		})
	}
}
