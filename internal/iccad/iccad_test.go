package iccad

import (
	"math"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
)

func TestLoadAllFullScale(t *testing.T) {
	bs, err := LoadAll(FullDims)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 5 {
		t.Fatalf("want 5 cases, got %d", len(bs))
	}
	for i, b := range bs {
		sp := Table2[i]
		if got := b.Stk.TotalPower(); math.Abs(got-sp.DiePower) > 1e-6*sp.DiePower {
			t.Errorf("case %d power %g, want %g", sp.ID, got, sp.DiePower)
		}
		if got := len(b.Stk.SourceLayers()); got != sp.Dies {
			t.Errorf("case %d has %d dies, want %d", sp.ID, got, sp.Dies)
		}
		wantCh := sp.Dies - 1
		if wantCh == 0 {
			wantCh = 1
		}
		if got := len(b.Stk.ChannelLayers()); got != wantCh {
			t.Errorf("case %d has %d channel layers, want %d", sp.ID, got, wantCh)
		}
		ch := b.Stk.Layers[b.Stk.ChannelLayers()[0]]
		if math.Abs(ch.Thickness-sp.ChannelHeight) > 1e-12 {
			t.Errorf("case %d h_c = %g, want %g", sp.ID, ch.Thickness, sp.ChannelHeight)
		}
		if b.DeltaTStar != sp.DeltaTStar || b.TmaxStar != sp.TmaxStar {
			t.Errorf("case %d constraints wrong", sp.ID)
		}
		if math.Abs(b.WpumpStar-0.001*sp.DiePower) > 1e-9 {
			t.Errorf("case %d W*_pump = %g, want 0.1%% of power", sp.ID, b.WpumpStar)
		}
	}
}

func TestCase3HasKeepout(t *testing.T) {
	b, err := Load(3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Keepout == nil {
		t.Fatal("case 3 must have a keepout region")
	}
	k := *b.Keepout
	if k[0] <= 0 || k[2] >= FullDims.NX || k[1] <= 0 || k[3] >= FullDims.NY {
		t.Fatalf("keepout %v should be interior", k)
	}
	// A straight baseline with the keepout carved must stay legal.
	n := network.Straight(FullDims, grid.SideWest, 1)
	b.ApplyKeepout(n)
	if errs := n.Check(); len(errs) > 0 {
		t.Fatalf("carved baseline illegal: %v", errs)
	}
}

func TestOtherCasesHaveNoKeepout(t *testing.T) {
	for _, id := range []int{1, 2, 4, 5} {
		b, err := Load(id)
		if err != nil {
			t.Fatal(err)
		}
		if b.Keepout != nil {
			t.Errorf("case %d should have no keepout", id)
		}
	}
}

func TestCase5IsHighlyVaried(t *testing.T) {
	b5, err := Load(5)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Load(2)
	if err != nil {
		t.Fatal(err)
	}
	// "High and highly varied die power": the absolute cell-power spread
	// of case 5 must dwarf case 2's, and so must its total power
	// (148 W vs ~37 W).
	std := func(b *Benchmark) float64 {
		pm := b.Stk.Layers[b.Stk.SourceLayers()[0]].Power
		mean := pm.Total() / float64(len(pm.W))
		var s float64
		for _, v := range pm.W {
			s += (v - mean) * (v - mean)
		}
		return math.Sqrt(s / float64(len(pm.W)))
	}
	if std(b5) <= 1.3*std(b2) {
		t.Fatalf("case 5 power spread %.4g W should clearly exceed case 2's %.4g W", std(b5), std(b2))
	}
	if b5.Stk.TotalPower() < 3*b2.Stk.TotalPower() {
		t.Fatal("case 5 power should dwarf case 2")
	}
}

func TestLoadScaledPreservesDensity(t *testing.T) {
	small := grid.Dims{NX: 21, NY: 21}
	b, err := LoadScaled(1, small)
	if err != nil {
		t.Fatal(err)
	}
	fullDensity := Table2[0].DiePower / float64(FullDims.NX*FullDims.NY)
	gotDensity := b.Stk.TotalPower() / float64(small.NX*small.NY)
	if math.Abs(gotDensity-fullDensity) > 1e-9 {
		t.Fatalf("areal density %g, want %g", gotDensity, fullDensity)
	}
}

func TestLoadDeterministic(t *testing.T) {
	a, _ := Load(1)
	b, _ := Load(1)
	pa := a.Stk.Layers[a.Stk.SourceLayers()[0]].Power
	pb := b.Stk.Layers[b.Stk.SourceLayers()[0]].Power
	for i := range pa.W {
		if pa.W[i] != pb.W[i] {
			t.Fatal("loads must be deterministic")
		}
	}
}

func TestLoadRejectsBadID(t *testing.T) {
	if _, err := Load(0); err == nil {
		t.Error("case 0 should fail")
	}
	if _, err := Load(6); err == nil {
		t.Error("case 6 should fail")
	}
}
