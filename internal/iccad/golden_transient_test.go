package iccad

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/rm2"
	"lcn3d/internal/rm4"
	"lcn3d/internal/scenario"
	"lcn3d/internal/thermal"
)

// goldenTrace is the persisted summary of one transient trace. Solver
// counters are deliberately excluded (they are implementation detail);
// the corpus pins the physics of the trace.
type goldenTrace struct {
	Peak       float64 `json:"peak"`
	PeakTime   float64 `json:"peak_time"`
	Final      float64 `json:"final"`
	FinalDT    float64 `json:"final_delta_t"`
	Overshoot  float64 `json:"overshoot"`
	SteadyTime float64 `json:"steady_time"`
	PumpEnergy float64 `json:"pump_energy"`
}

type goldenTransient struct {
	Name        string      `json:"name"`
	Case        int         `json:"case"`
	NetworkHash string      `json:"network_hash"`
	RM2         goldenTrace `json:"rm2"`
	RM4         goldenTrace `json:"rm4"`
}

func toGoldenTrace(r *scenario.Result) goldenTrace {
	return goldenTrace{
		Peak: r.Peak, PeakTime: r.PeakTime,
		Final: r.Final, FinalDT: r.FinalDT,
		Overshoot: r.Overshoot, SteadyTime: r.SteadyTime,
		PumpEnergy: r.PumpEnergy,
	}
}

// transientCases: one DVFS power step and one partial pump failure, each
// on a different benchmark power map, both run through both models.
var transientCases = []struct {
	name   string
	caseID int
	spec   scenario.Spec
}{
	{
		name:   "case1_dvfs_step",
		caseID: 1,
		spec: scenario.Spec{
			Dt: 2e-3, Steps: 60, Psys: 10e3,
			Power: []scenario.PowerEvent{
				{Kind: "dvfs", Layer: -1, T0: 0.04, Factor: 2.5},
			},
		},
	},
	{
		name:   "case2_pump_fail",
		caseID: 2,
		spec: scenario.Spec{
			Dt: 2e-3, Steps: 60, Psys: 10e3,
			Pump: []scenario.PumpEvent{
				{Kind: "fail", T0: 0.04, Frac: 0.3},
			},
		},
	},
}

// transientModels builds both thermal models for a benchmark on the
// straight-west network at golden scale.
func transientModels(t *testing.T, caseID int) (*network.Network, *rm2.Model, *rm4.Model) {
	t.Helper()
	b, err := LoadScaled(caseID, goldenDims)
	if err != nil {
		t.Fatal(err)
	}
	n := network.Straight(b.Stk.Dims, grid.SideWest, 1)
	b.ApplyKeepout(n)
	nets := make([]*network.Network, len(b.Stk.ChannelLayers()))
	for i := range nets {
		nets[i] = n
	}
	m2, err := rm2.New(b.Stk, nets, goldenCoarseM, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := rm4.New(b.Stk, nets, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	return n, m2, m4
}

func checkTrace(t *testing.T, fixture, model string, got, want goldenTrace) {
	t.Helper()
	const tol = 1e-6
	fields := []struct {
		name      string
		got, want float64
	}{
		{"peak", got.Peak, want.Peak},
		{"peak_time", got.PeakTime, want.PeakTime},
		{"final", got.Final, want.Final},
		{"final_delta_t", got.FinalDT, want.FinalDT},
		{"overshoot", got.Overshoot, want.Overshoot},
		{"steady_time", got.SteadyTime, want.SteadyTime},
		{"pump_energy", got.PumpEnergy, want.PumpEnergy},
	}
	for _, f := range fields {
		if d := relDiff(f.got, f.want); d > tol {
			t.Errorf("%s %s: %s = %.12g, golden %.12g (rel diff %.3g > %g)",
				fixture, model, f.name, f.got, f.want, d, tol)
		}
	}
}

// TestGoldenTransientCorpus recomputes every transient fixture with both
// thermal models and compares against the committed goldens. Run with
// -update to rewrite them after an intentional physics change.
func TestGoldenTransientCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2RM and 4RM transient traces")
	}
	for _, tc := range transientCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			n, m2, m4 := transientModels(t, tc.caseID)
			ctx := context.Background()
			r2, err := scenario.Run(ctx, m2, &tc.spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			r4, err := scenario.Run(ctx, m4, &tc.spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := goldenTransient{
				Name: tc.name, Case: tc.caseID, NetworkHash: n.CanonicalHash(),
				RM2: toGoldenTrace(r2), RM4: toGoldenTrace(r4),
			}
			// Trace-shape sanity holds regardless of golden freshness.
			for model, r := range map[string]*scenario.Result{"2rm": r2, "4rm": r4} {
				if r.Peak < 300 || math.IsNaN(r.Peak) {
					t.Fatalf("%s: unphysical peak %g", model, r.Peak)
				}
				if r.Overshoot < 0 {
					t.Fatalf("%s: negative overshoot %g", model, r.Overshoot)
				}
				if r.Stats.Steps != tc.spec.Steps {
					t.Fatalf("%s: %d steps recorded, want %d", model, r.Stats.Steps, tc.spec.Steps)
				}
			}

			path := goldenPath(tc.name)
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			var want goldenTransient
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			if got.NetworkHash != want.NetworkHash {
				t.Fatalf("%s: fixture network hash %s, golden %s — the fixture generator changed",
					tc.name, got.NetworkHash, want.NetworkHash)
			}
			checkTrace(t, tc.name, "2rm", got.RM2, want.RM2)
			checkTrace(t, tc.name, "4rm", got.RM4, want.RM4)
		})
	}
}

// TestGoldenTransientModelAgreement is the transient differential check:
// the coarse 2RM trace must track the 4RM trace. The peak temperature
// rise above the 300 K inlet and the time axis must agree within
// empirical bounds (looser than the steady corpus — coarsening smooths
// transients); pump energy is model-independent physics and agrees
// tightly.
func TestGoldenTransientModelAgreement(t *testing.T) {
	const tin = 300.0
	for _, tc := range transientCases {
		data, err := os.ReadFile(goldenPath(tc.name))
		if err != nil {
			t.Fatalf("missing golden (run TestGoldenTransientCorpus with -update): %v", err)
		}
		var fx goldenTransient
		if err := json.Unmarshal(data, &fx); err != nil {
			t.Fatal(err)
		}
		type bound struct {
			name     string
			rm2, rm4 float64
			maxRel   float64
		}
		for _, b := range []bound{
			{"peak rise", fx.RM2.Peak - tin, fx.RM4.Peak - tin, 0.30},
			{"final rise", fx.RM2.Final - tin, fx.RM4.Final - tin, 0.30},
			{"steady_time", fx.RM2.SteadyTime, fx.RM4.SteadyTime, 0.60},
			{"pump_energy", fx.RM2.PumpEnergy, fx.RM4.PumpEnergy, 0.05},
		} {
			if d := relDiff(b.rm2, b.rm4); d > b.maxRel {
				t.Errorf("%s: 2RM-vs-4RM %s diverges: %.6g vs %.6g (rel %.3g > %.2g)",
					fx.Name, b.name, b.rm2, b.rm4, d, b.maxRel)
			}
		}
	}
}
