package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"lcn3d/internal/grid"
)

func TestTableAligned(t *testing.T) {
	tb := &Table{
		Title:  "Result",
		Header: []string{"Case", "Wpump (mW)"},
	}
	tb.AddRow("1", "10.41")
	tb.AddRow("2", "6.9")
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Result") || !strings.Contains(out, "Case") {
		t.Fatalf("missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, 2 rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Column alignment: "10.41" and "6.9" start at the same offset.
	if strings.Index(lines[3], "10.41") != strings.Index(lines[4], "6.9") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a,b\n1,2\n" {
		t.Fatalf("csv %q", buf.String())
	}
}

func TestFFormatsInfinityAsNA(t *testing.T) {
	if F(math.Inf(1), 2) != "N/A" {
		t.Fatal("infeasible values must print as N/A (paper Table 3 case 5)")
	}
	if F(12.3456, 2) != "12.35" {
		t.Fatalf("got %s", F(12.3456, 2))
	}
}

func heat() *Heatmap {
	d := grid.Dims{NX: 4, NY: 3}
	h := &Heatmap{Dims: d, V: make([]float64, d.N())}
	for i := range h.V {
		h.V[i] = float64(i)
	}
	return h
}

func TestHeatmapBounds(t *testing.T) {
	h := heat()
	lo, hi := h.Bounds()
	if lo != 0 || hi != 11 {
		t.Fatalf("bounds %g %g", lo, hi)
	}
}

func TestHeatmapASCIIShape(t *testing.T) {
	h := heat()
	art := h.ASCII(0)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 3 || len(lines[0]) != 4 {
		t.Fatalf("shape wrong:\n%s", art)
	}
	// North row (largest values) printed first: last char of first line
	// must be the densest ramp character.
	if lines[0][3] != '@' {
		t.Fatalf("hottest cell should be '@':\n%s", art)
	}
	if lines[2][0] != ' ' {
		t.Fatalf("coolest cell should be ' ':\n%s", art)
	}
}

func TestHeatmapASCIIDownsamples(t *testing.T) {
	d := grid.Dims{NX: 100, NY: 100}
	h := &Heatmap{Dims: d, V: make([]float64, d.N())}
	art := h.ASCII(25)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines[0]) > 25 {
		t.Fatalf("line width %d > 25", len(lines[0]))
	}
}

func TestWritePGM(t *testing.T) {
	var buf bytes.Buffer
	if err := heat().WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n4 3\n255\n")) {
		t.Fatalf("bad header %q", out[:12])
	}
	if len(out) != len("P5\n4 3\n255\n")+12 {
		t.Fatalf("payload size %d", len(out))
	}
}

func TestWritePPM(t *testing.T) {
	var buf bytes.Buffer
	if err := heat().WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("P6\n4 3\n255\n")) {
		t.Fatal("bad PPM header")
	}
	if len(buf.Bytes()) != len("P6\n4 3\n255\n")+36 {
		t.Fatalf("payload size %d", len(buf.Bytes()))
	}
}

func TestConstantFieldDoesNotDivideByZero(t *testing.T) {
	d := grid.Dims{NX: 2, NY: 2}
	h := &Heatmap{Dims: d, V: []float64{5, 5, 5, 5}}
	if s := h.ASCII(0); strings.Contains(s, "NaN") {
		t.Fatal("constant field broke rendering")
	}
	var buf bytes.Buffer
	if err := h.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestThermalColorEndpoints(t *testing.T) {
	r, _, b := thermalColor(0)
	if r != 0 || b != 255 {
		t.Fatalf("cold end should be blue: %d %d", r, b)
	}
	r, g, bb := thermalColor(1)
	if r != 255 || g != 0 || bb != 0 {
		t.Fatal("hot end should be red")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, "p",
		Series{Name: "dT", X: []float64{1, 2}, Y: []float64{10, 5}},
		Series{Name: "tmax", X: []float64{1, 2}, Y: []float64{320, 310}},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := "p,dT,tmax\n1,10,320\n2,5,310\n"
	if buf.String() != want {
		t.Fatalf("got %q", buf.String())
	}
}
