// Package report renders experiment outputs: aligned ASCII tables (the
// paper's Tables 3/4 layout), CSV series (Figs. 5/6/9), and temperature
// heatmaps (Fig. 10) as ASCII art or portable pixmaps.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"lcn3d/internal/grid"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	all := make([][]string, 0, len(t.Rows)+1)
	if len(t.Header) > 0 {
		all = append(all, t.Header)
	}
	all = append(all, t.Rows...)
	widths := make([]int, 0)
	for _, row := range all {
		for c, cell := range row {
			if c >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	line := func(row []string) string {
		parts := make([]string, len(row))
		for c, cell := range row {
			parts[c] = fmt.Sprintf("%-*s", widths[c], cell)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if len(t.Header) > 0 {
		if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
			return err
		}
		total := len(widths)*2 - 2
		for _, wd := range widths {
			total += wd
		}
		if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (no quoting; cells must not contain
// commas).
func (t *Table) WriteCSV(w io.Writer) error {
	if len(t.Header) > 0 {
		if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float compactly for table cells.
func F(v float64, prec int) string {
	if math.IsInf(v, 1) {
		return "N/A"
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// Heatmap renders a scalar field on a grid.
type Heatmap struct {
	Dims grid.Dims
	V    []float64
}

// Bounds returns the min and max of the field.
func (h *Heatmap) Bounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range h.V {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// ASCII renders the field as character art using a luminance ramp, north
// row first, downsampled to at most maxCols columns.
func (h *Heatmap) ASCII(maxCols int) string {
	ramp := []byte(" .:-=+*#%@")
	lo, hi := h.Bounds()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	step := 1
	if maxCols > 0 && h.Dims.NX > maxCols {
		step = (h.Dims.NX + maxCols - 1) / maxCols
	}
	var sb strings.Builder
	for y := h.Dims.NY - 1; y >= 0; y -= step {
		for x := 0; x < h.Dims.NX; x += step {
			v := h.V[h.Dims.Index(x, y)]
			k := int((v - lo) / span * float64(len(ramp)-1))
			sb.WriteByte(ramp[k])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WritePGM writes the field as an 8-bit binary PGM image (grayscale),
// north row first so the image matches the chip orientation.
func (h *Heatmap) WritePGM(w io.Writer) error {
	lo, hi := h.Bounds()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", h.Dims.NX, h.Dims.NY); err != nil {
		return err
	}
	row := make([]byte, h.Dims.NX)
	for y := h.Dims.NY - 1; y >= 0; y-- {
		for x := 0; x < h.Dims.NX; x++ {
			v := (h.V[h.Dims.Index(x, y)] - lo) / span
			row[x] = byte(math.Round(v * 255))
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// WritePPM writes the field as a binary PPM using a blue-red thermal
// colormap.
func (h *Heatmap) WritePPM(w io.Writer) error {
	lo, hi := h.Bounds()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", h.Dims.NX, h.Dims.NY); err != nil {
		return err
	}
	row := make([]byte, 3*h.Dims.NX)
	for y := h.Dims.NY - 1; y >= 0; y-- {
		for x := 0; x < h.Dims.NX; x++ {
			v := (h.V[h.Dims.Index(x, y)] - lo) / span
			r, g, b := thermalColor(v)
			row[3*x], row[3*x+1], row[3*x+2] = r, g, b
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// thermalColor maps t in [0,1] to a blue→cyan→yellow→red ramp.
func thermalColor(t float64) (r, g, b byte) {
	t = math.Max(0, math.Min(1, t))
	switch {
	case t < 1.0/3:
		u := t * 3
		return 0, byte(255 * u), byte(255 * (1 - u/2))
	case t < 2.0/3:
		u := (t - 1.0/3) * 3
		return byte(255 * u), 255, byte(128 * (1 - u))
	default:
		u := (t - 2.0/3) * 3
		return 255, byte(255 * (1 - u)), 0
	}
}

// Series is a named (x, y) sequence for figure-style outputs.
type Series struct {
	Name string
	X, Y []float64
}

// WriteSeriesCSV writes aligned series sharing the same X to CSV:
// x,name1,name2,...
func WriteSeriesCSV(w io.Writer, xLabel string, series ...Series) error {
	if len(series) == 0 {
		return nil
	}
	names := make([]string, 0, len(series)+1)
	names = append(names, xLabel)
	for _, s := range series {
		names = append(names, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(names, ",")); err != nil {
		return err
	}
	for i := range series[0].X {
		cells := []string{fmt.Sprintf("%g", series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				cells = append(cells, fmt.Sprintf("%g", s.Y[i]))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
