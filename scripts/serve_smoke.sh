#!/usr/bin/env bash
# Integration smoke for cmd/lcn-serve, in two phases:
#
#  1. happy path — start the daemon at reduced scale, fire duplicate
#     concurrent evaluations, assert the metrics show single-flight
#     dedup and a result-cache hit, then check SIGTERM drains
#     gracefully (exit 0 + final metrics line on stdout);
#  2. chaos — restart with a fault-injection plan armed (panic on the
#     first compute, solver breakdown on every thermal probe), assert a
#     malformed probe gets a 400, the poisoned request a 500, the next
#     request a degraded-but-correct 200, the escalation and panic
#     counters appear in /v1/metrics, the daemon never restarts, and
#     SIGTERM still drains cleanly.
set -euo pipefail

ADDR="127.0.0.1:${LCN_SERVE_PORT:-18080}"
SCALE="${LCN_SERVE_SCALE:-51}"
CHAOS_SCALE="${LCN_CHAOS_SCALE:-21}"
# The chaos plan walks the whole ladder: the multigrid coarse-solve
# fault poisons the V-cycle of the primary attempt (the breakdown rule
# fires on every second BiCGSTAB *entry*, so the first attempt runs far
# enough to exercise the poisoned preconditioner), the ILU retry then
# hits the entry breakdown, and the probe lands on GMRES, degraded.
CHAOS_FAULTS="${LCN_CHAOS_FAULTS:-service.panic=first:1;solver.mg.coarse=always;solver.bicgstab.breakdown=every:2}"
BODY='{"case":1,"model":"2rm","coarse_m":4,"network":{"generator":"straight"}}'
OUT="$(mktemp)"
trap 'kill "$SRV" 2>/dev/null || true; rm -f "$OUT" /tmp/lcn-serve-smoke' EXIT

go build -o /tmp/lcn-serve-smoke ./cmd/lcn-serve
/tmp/lcn-serve-smoke -addr "$ADDR" -scale "$SCALE" >"$OUT" &
SRV=$!

for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  [ "$i" = 50 ] && { echo "FAIL: server never became healthy"; exit 1; }
  sleep 0.2
done

# Duplicate concurrent requests: exactly one evaluation should run, the
# rest coalesce onto it (single-flight).
pids=()
for _ in 1 2 3 4; do
  curl -sf -XPOST -d "$BODY" "http://$ADDR/v1/evaluate" >/dev/null &
  pids+=($!)
done
for p in "${pids[@]}"; do wait "$p"; done

# A repeat after completion must be a result-cache hit.
curl -sf -XPOST -d "$BODY" "http://$ADDR/v1/evaluate" >/dev/null

curl -sf "http://$ADDR/v1/metrics" | python3 -c '
import json, sys
m = json.load(sys.stdin)
print("metrics:", {k: m[k] for k in
    ("requests", "cache_hits", "cache_misses", "dedup_hits", "evaluations")})
assert m["evaluations"] == 1, "want 1 evaluation, got %d" % m["evaluations"]
assert m["dedup_hits"] > 0, "no single-flight dedup observed"
assert m["cache_hits"] > 0, "no result-cache hit observed"
assert m["errors"] == 0 and m["timeouts"] == 0, "unexpected failures"
'

kill -TERM "$SRV"
wait "$SRV" || { echo "FAIL: non-zero exit after SIGTERM"; exit 1; }
grep -q '"cache_hits"' "$OUT" || { echo "FAIL: no final metrics line"; exit 1; }
echo "PASS: dedup + cache hit + graceful drain"

# ---- Phase 2: chaos -------------------------------------------------

LCN_FAULTS="$CHAOS_FAULTS" /tmp/lcn-serve-smoke -addr "$ADDR" -scale "$CHAOS_SCALE" >"$OUT" &
SRV=$!

for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  [ "$i" = 50 ] && { echo "FAIL: chaos server never became healthy"; exit 1; }
  sleep 0.2
done

code() { curl -s -o "$2" -w '%{http_code}' -XPOST -d "$1" "http://$ADDR/v1/evaluate"; }

# Malformed payload: orderly 400, not a crash.
got="$(code 'not json' /dev/null)"
[ "$got" = 400 ] || { echo "FAIL: malformed payload got $got, want 400"; exit 1; }

# First compute panics (service.panic=first:1): contained as a 500.
got="$(code "$BODY" /dev/null)"
[ "$got" = 500 ] || { echo "FAIL: poisoned request got $got, want 500"; exit 1; }

# The daemon survives: the same request now completes through the
# escalation ladder (every thermal probe breaks down) and is flagged.
RESP="$(mktemp)"
got="$(code "$BODY" "$RESP")"
[ "$got" = 200 ] || { echo "FAIL: post-panic request got $got, want 200"; rm -f "$RESP"; exit 1; }
grep -q '"degraded":true' "$RESP" || { echo "FAIL: ladder result not marked degraded: $(cat "$RESP")"; rm -f "$RESP"; exit 1; }
rm -f "$RESP"

curl -sf "http://$ADDR/v1/metrics" | python3 -c '
import json, sys
m = json.load(sys.stdin)
print("chaos metrics:", {"panics": m["panics"], "factor": m["factor"], "faults": m.get("faults")})
assert m["panics"] == 1, "want 1 contained panic, got %d" % m["panics"]
assert m["factor"]["retry_rebuild"] >= 1, "multigrid -> ILU0 retry rung never climbed"
assert m["factor"]["retry_gmres"] >= 1, "escalation ladder never climbed to GMRES"
assert m["factor"]["degraded"] >= 1, "no degraded probes counted"
f = m.get("faults") or {}
assert f.get("service.panic", {}).get("fired") == 1, "panic injection not visible: %r" % f
assert f.get("solver.mg.coarse", {}).get("fired", 0) >= 1, "multigrid injection not visible: %r" % f
assert f.get("solver.bicgstab.breakdown", {}).get("fired", 0) >= 1, "breakdown injection not visible: %r" % f
'

# Same process all along — the panic must not have restarted anything.
kill -0 "$SRV" || { echo "FAIL: chaos server died"; exit 1; }
kill -TERM "$SRV"
wait "$SRV" || { echo "FAIL: non-zero exit after SIGTERM (chaos)"; exit 1; }
echo "PASS: chaos — 400/500 contained, degraded ladder result, counters visible, clean drain"
