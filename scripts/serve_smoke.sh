#!/usr/bin/env bash
# Integration smoke for cmd/lcn-serve, in seven phases:
#
#  1. happy path — start the daemon at reduced scale, fire duplicate
#     concurrent evaluations, assert the metrics show single-flight
#     dedup and a result-cache hit, then check SIGTERM drains
#     gracefully (exit 0 + final metrics line on stdout);
#  2. chaos — restart with a fault-injection plan armed (panic on the
#     first compute, solver breakdown on every thermal probe), assert a
#     malformed probe gets a 400, the poisoned request a 500, the next
#     request a degraded-but-correct 200, the escalation and panic
#     counters appear in /v1/metrics, the daemon never restarts, and
#     SIGTERM still drains cleanly;
#  3. cluster — start a 3-node fleet sharing one peer list (each with a
#     persistent store), solve a topology through node A, assert nodes
#     B and C serve the same hash through the peer tier with exactly
#     one solver run fleet-wide, then kill A and assert B and C still
#     answer (local-compute fallback for A-owned keys);
#  4. cluster chaos — 2 nodes with cluster.forward/cluster.fetch faults
#     armed: peer-owned requests must fall back to local compute, still
#     200, with the fallback and fault counters visible in metrics;
#  5. kill-and-resume — start a node with a store, submit an async
#     optimization job, SIGKILL the process after its first checkpoint,
#     restart on the same store, and assert the job is recovered and
#     completes from the checkpoint (resumes >= 1);
#  6. overload & brownout — (a) a 12-way burst against a 2-worker,
#     tiny-queue daemon with fault-paced computes: admitted requests
#     succeed, the surplus gets 429 + Retry-After, the admission
#     counters reconcile, and the next request is a plain 200; (b) a
#     2-node fleet with overload.breaker=always armed: every peer call
#     is refused locally by an open circuit breaker, remote-owned
#     requests fall back to local compute, and the per-peer health rows
#     in /v1/metrics show the open breakers;
#  7. transient chaos — a daemon with the thermal.transient.* fault
#     points armed (pump glitches every 3rd step, paced steps) streams a
#     /v1/transient trace with a DVFS event: the SSE stream must carry
#     the thinned step events plus the terminal result, a malformed
#     schedule must 400 before any SSE bytes, and the transient + fault
#     counters must appear in /v1/metrics.
set -euo pipefail

ADDR="127.0.0.1:${LCN_SERVE_PORT:-18080}"
SCALE="${LCN_SERVE_SCALE:-51}"
CHAOS_SCALE="${LCN_CHAOS_SCALE:-21}"
# The chaos plan walks the whole ladder: the multigrid coarse-solve
# fault poisons the V-cycle of the primary attempt (the breakdown rule
# fires on every second BiCGSTAB *entry*, so the first attempt runs far
# enough to exercise the poisoned preconditioner), the ILU retry then
# hits the entry breakdown, and the probe lands on GMRES, degraded.
CHAOS_FAULTS="${LCN_CHAOS_FAULTS:-service.panic=first:1;solver.mg.coarse=always;solver.bicgstab.breakdown=every:2}"
BODY='{"case":1,"model":"2rm","coarse_m":4,"network":{"generator":"straight"}}'
OUT="$(mktemp)"
STORES="$(mktemp -d)"
SRV="" SRVA="" SRVB="" SRVC=""
trap 'kill "$SRV" "$SRVA" "$SRVB" "$SRVC" 2>/dev/null || true; rm -rf "$OUT" "$OUT.err" "$STORES" /tmp/lcn-serve-smoke' EXIT

go build -o /tmp/lcn-serve-smoke ./cmd/lcn-serve
/tmp/lcn-serve-smoke -addr "$ADDR" -scale "$SCALE" >"$OUT" &
SRV=$!

for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  [ "$i" = 50 ] && { echo "FAIL: server never became healthy"; exit 1; }
  sleep 0.2
done

# Duplicate concurrent requests: exactly one evaluation should run, the
# rest coalesce onto it (single-flight).
pids=()
for _ in 1 2 3 4; do
  curl -sf -XPOST -d "$BODY" "http://$ADDR/v1/evaluate" >/dev/null &
  pids+=($!)
done
for p in "${pids[@]}"; do wait "$p"; done

# A repeat after completion must be a result-cache hit.
curl -sf -XPOST -d "$BODY" "http://$ADDR/v1/evaluate" >/dev/null

curl -sf "http://$ADDR/v1/metrics" | python3 -c '
import json, sys
m = json.load(sys.stdin)
print("metrics:", {k: m[k] for k in
    ("requests", "cache_hits", "cache_misses", "dedup_hits", "evaluations")})
assert m["evaluations"] == 1, "want 1 evaluation, got %d" % m["evaluations"]
assert m["dedup_hits"] > 0, "no single-flight dedup observed"
assert m["cache_hits"] > 0, "no result-cache hit observed"
assert m["errors"] == 0 and m["timeouts"] == 0, "unexpected failures"
'

kill -TERM "$SRV"
wait "$SRV" || { echo "FAIL: non-zero exit after SIGTERM"; exit 1; }
grep -q '"cache_hits"' "$OUT" || { echo "FAIL: no final metrics line"; exit 1; }
echo "PASS: dedup + cache hit + graceful drain"

# ---- Phase 2: chaos -------------------------------------------------

LCN_FAULTS="$CHAOS_FAULTS" /tmp/lcn-serve-smoke -addr "$ADDR" -scale "$CHAOS_SCALE" >"$OUT" &
SRV=$!

for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  [ "$i" = 50 ] && { echo "FAIL: chaos server never became healthy"; exit 1; }
  sleep 0.2
done

code() { curl -s -o "$2" -w '%{http_code}' -XPOST -d "$1" "http://$ADDR/v1/evaluate"; }

# Malformed payload: orderly 400, not a crash.
got="$(code 'not json' /dev/null)"
[ "$got" = 400 ] || { echo "FAIL: malformed payload got $got, want 400"; exit 1; }

# First compute panics (service.panic=first:1): contained as a 500.
got="$(code "$BODY" /dev/null)"
[ "$got" = 500 ] || { echo "FAIL: poisoned request got $got, want 500"; exit 1; }

# The daemon survives: the same request now completes through the
# escalation ladder (every thermal probe breaks down) and is flagged.
RESP="$(mktemp)"
got="$(code "$BODY" "$RESP")"
[ "$got" = 200 ] || { echo "FAIL: post-panic request got $got, want 200"; rm -f "$RESP"; exit 1; }
grep -q '"degraded":true' "$RESP" || { echo "FAIL: ladder result not marked degraded: $(cat "$RESP")"; rm -f "$RESP"; exit 1; }
rm -f "$RESP"

curl -sf "http://$ADDR/v1/metrics" | python3 -c '
import json, sys
m = json.load(sys.stdin)
print("chaos metrics:", {"panics": m["panics"], "factor": m["factor"], "faults": m.get("faults")})
assert m["panics"] == 1, "want 1 contained panic, got %d" % m["panics"]
assert m["factor"]["retry_rebuild"] >= 1, "multigrid -> ILU0 retry rung never climbed"
assert m["factor"]["retry_gmres"] >= 1, "escalation ladder never climbed to GMRES"
assert m["factor"]["degraded"] >= 1, "no degraded probes counted"
f = m.get("faults") or {}
assert f.get("service.panic", {}).get("fired") == 1, "panic injection not visible: %r" % f
assert f.get("solver.mg.coarse", {}).get("fired", 0) >= 1, "multigrid injection not visible: %r" % f
assert f.get("solver.bicgstab.breakdown", {}).get("fired", 0) >= 1, "breakdown injection not visible: %r" % f
'

# Same process all along — the panic must not have restarted anything.
kill -0 "$SRV" || { echo "FAIL: chaos server died"; exit 1; }
kill -TERM "$SRV"
wait "$SRV" || { echo "FAIL: non-zero exit after SIGTERM (chaos)"; exit 1; }
SRV=""
echo "PASS: chaos — 400/500 contained, degraded ladder result, counters visible, clean drain"

# ---- Phase 3: cluster -----------------------------------------------

PORT_A="${LCN_CLUSTER_PORT_A:-18091}"
PORT_B="${LCN_CLUSTER_PORT_B:-18092}"
PORT_C="${LCN_CLUSTER_PORT_C:-18093}"
A="127.0.0.1:$PORT_A"; B="127.0.0.1:$PORT_B"; C="127.0.0.1:$PORT_C"
PEERS="$A,$B,$C"
SIM_BODY='{"case":1,"model":"2rm","coarse_m":4,"network":{"generator":"straight"},"psys":9000}'

/tmp/lcn-serve-smoke -addr "$A" -scale "$CHAOS_SCALE" -self "$A" -peers "$PEERS" -store "$STORES/a" >/dev/null &
SRVA=$!
/tmp/lcn-serve-smoke -addr "$B" -scale "$CHAOS_SCALE" -self "$B" -peers "$PEERS" -store "$STORES/b" >/dev/null &
SRVB=$!
/tmp/lcn-serve-smoke -addr "$C" -scale "$CHAOS_SCALE" -self "$C" -peers "$PEERS" -store "$STORES/c" >/dev/null &
SRVC=$!

for node in "$A" "$B" "$C"; do
  for i in $(seq 1 50); do
    curl -sf "http://$node/healthz" >/dev/null && break
    [ "$i" = 50 ] && { echo "FAIL: cluster node $node never became healthy"; exit 1; }
    sleep 0.2
  done
done

# Solve a topology through node A, then ask B and C for the same hash:
# whichever node the key's consistent-hash owner is computes once; the
# other two answer through the peer tier (store fetch or forward).
R_A="$(mktemp)"; R_B="$(mktemp)"; R_C="$(mktemp)"
curl -sf -XPOST -d "$SIM_BODY" "http://$A/v1/simulate" >"$R_A"
curl -sf -XPOST -d "$SIM_BODY" "http://$B/v1/simulate" >"$R_B"
curl -sf -XPOST -d "$SIM_BODY" "http://$C/v1/simulate" >"$R_C"
cmp -s "$R_A" "$R_B" && cmp -s "$R_A" "$R_C" \
  || { echo "FAIL: nodes returned different bytes for the same hash"; exit 1; }
rm -f "$R_A" "$R_B" "$R_C"

{ curl -sf "http://$A/v1/metrics"; curl -sf "http://$B/v1/metrics"; curl -sf "http://$C/v1/metrics"; } \
  | python3 -c '
import json, sys
nodes = [json.loads(l) for l in sys.stdin if l.strip()]
evals = sum(m["evaluations"] for m in nodes)
peer_hits = sum(m["peer_hits"] for m in nodes)
print("cluster metrics:", [{k: m[k] for k in
    ("evaluations", "peer_hits", "store_hits", "local_fallbacks")} for m in nodes])
assert evals == 1, "want exactly 1 solver run fleet-wide, got %d" % evals
assert peer_hits == 2, "want the 2 non-owners to answer via the peer tier, got %d" % peer_hits
for m in nodes:
    assert m["cluster"]["self"], "cluster stats missing"
    assert m["store"] is not None, "store stats missing"
'

# Kill node A: survivors must still answer — keys A owned fall back to
# local compute, everything else is unaffected.
kill -TERM "$SRVA"
wait "$SRVA" || { echo "FAIL: node A non-zero exit after SIGTERM"; exit 1; }
SRVA=""
NEW_BODY='{"case":1,"model":"2rm","coarse_m":4,"network":{"generator":"straight"},"psys":9100}'
curl -sf -XPOST -d "$NEW_BODY" "http://$B/v1/simulate" >/dev/null \
  || { echo "FAIL: node B cannot answer after A died"; exit 1; }
curl -sf -XPOST -d "$NEW_BODY" "http://$C/v1/simulate" >/dev/null \
  || { echo "FAIL: node C cannot answer after A died"; exit 1; }

kill -TERM "$SRVB" "$SRVC"
wait "$SRVB" || { echo "FAIL: node B non-zero exit after SIGTERM"; exit 1; }
wait "$SRVC" || { echo "FAIL: node C non-zero exit after SIGTERM"; exit 1; }
SRVB="" SRVC=""
echo "PASS: cluster — single fleet-wide compute, peer-tier serving, survives node loss"

# ---- Phase 4: cluster chaos -----------------------------------------

# Forwarding and store fetch both fail by injection: every peer-owned
# request must degrade to local compute, never to an error.
LCN_FAULTS="cluster.forward=always;cluster.fetch=always" \
  /tmp/lcn-serve-smoke -addr "$B" -scale "$CHAOS_SCALE" -self "$B" -peers "$B,$C" >/dev/null &
SRVB=$!
LCN_FAULTS="cluster.forward=always;cluster.fetch=always" \
  /tmp/lcn-serve-smoke -addr "$C" -scale "$CHAOS_SCALE" -self "$C" -peers "$B,$C" >/dev/null &
SRVC=$!

for node in "$B" "$C"; do
  for i in $(seq 1 50); do
    curl -sf "http://$node/healthz" >/dev/null && break
    [ "$i" = 50 ] && { echo "FAIL: chaos cluster node $node never became healthy"; exit 1; }
    sleep 0.2
  done
done

# Each key goes to BOTH nodes: exactly one of the two sees it as
# remote-owned, so every pressure forces one fallback somewhere.
for p in 9200 9300 9400 9500; do
  for node in "$B" "$C"; do
    curl -sf -XPOST -d "{\"case\":1,\"model\":\"2rm\",\"coarse_m\":4,\"network\":{\"generator\":\"straight\"},\"psys\":$p}" \
      "http://$node/v1/simulate" >/dev/null \
      || { echo "FAIL: request failed under forward faults (psys=$p via $node)"; exit 1; }
  done
done

{ curl -sf "http://$B/v1/metrics"; curl -sf "http://$C/v1/metrics"; } | python3 -c '
import json, sys
nodes = [json.loads(l) for l in sys.stdin if l.strip()]
print("cluster chaos metrics:", [{k: m[k] for k in
    ("evaluations", "peer_hits", "local_fallbacks")} for m in nodes],
    "faults:", [m.get("faults") for m in nodes])
fallbacks = sum(m["local_fallbacks"] for m in nodes)
assert fallbacks >= 4, "want every remote-owned request to fall back locally, got %d" % fallbacks
assert all(m["peer_hits"] == 0 for m in nodes), "peer tier succeeded despite always-on faults"
fired = sum(m.get("faults", {}).get(pt, {}).get("fired", 0)
            for m in nodes for pt in ("cluster.forward", "cluster.fetch"))
assert fired >= 1, "cluster fault injection not visible"
'

kill -TERM "$SRVB" "$SRVC"
wait "$SRVB" || { echo "FAIL: chaos node B non-zero exit after SIGTERM"; exit 1; }
wait "$SRVC" || { echo "FAIL: chaos node C non-zero exit after SIGTERM"; exit 1; }
SRVB="" SRVC=""
echo "PASS: cluster chaos — forward faults degrade to local compute, counters visible"

# ---- Phase 5: kill-and-resume ---------------------------------------

# The thermal.slow pacing keeps the job mid-run while we wait for its
# first checkpoint; SIGKILL then models a crash (no drain, no flush
# beyond the store's periodic batcher).
JOB_BODY='{"case":1,"scale":15,"seed":7,"chains":2,"exchange_every":1,"num_trees":2,"branch":2,"coarse_m":3}'
LCN_FAULTS="thermal.slow=always;delay=3ms" \
  /tmp/lcn-serve-smoke -addr "$ADDR" -scale "$CHAOS_SCALE" -store "$STORES/jobs" >/dev/null &
SRV=$!

for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  [ "$i" = 50 ] && { echo "FAIL: jobs server never became healthy"; exit 1; }
  sleep 0.2
done

JOB_ID="$(curl -sf -XPOST -d "$JOB_BODY" "http://$ADDR/v1/jobs" \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')"
[ -n "$JOB_ID" ] || { echo "FAIL: job submission returned no id"; exit 1; }

for i in $(seq 1 200); do
  SEQ="$(curl -sf "http://$ADDR/v1/jobs/$JOB_ID" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin).get("checkpoint_seq", 0))')"
  [ "$SEQ" -ge 1 ] && break
  [ "$i" = 200 ] && { echo "FAIL: job never checkpointed"; exit 1; }
  sleep 0.1
done
# Give the store's periodic flusher (100ms) a beat to make the
# checkpoint durable, then crash the process hard.
sleep 0.5
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
SRV=""

# Restart over the same store, unpaced: recovery must re-queue the job
# and finish it from the checkpoint.
/tmp/lcn-serve-smoke -addr "$ADDR" -scale "$CHAOS_SCALE" -store "$STORES/jobs" >"$OUT" 2>"$OUT.err" &
SRV=$!
for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  [ "$i" = 50 ] && { echo "FAIL: restarted jobs server never became healthy"; exit 1; }
  sleep 0.2
done
grep -q "jobs: recovered" "$OUT.err" || { echo "FAIL: restart did not report job recovery"; exit 1; }

for i in $(seq 1 300); do
  STATE="$(curl -sf "http://$ADDR/v1/jobs/$JOB_ID" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin).get("state", ""))')"
  [ "$STATE" = done ] && break
  [ "$STATE" = failed ] && { echo "FAIL: recovered job failed"; exit 1; }
  [ "$i" = 300 ] && { echo "FAIL: recovered job never finished (state=$STATE)"; exit 1; }
  sleep 0.1
done

curl -sf "http://$ADDR/v1/jobs/$JOB_ID" | python3 -c '
import json, sys
r = json.load(sys.stdin)
print("resumed job:", {k: r.get(k) for k in
    ("state", "checkpoint_seq", "resumes")})
assert r["state"] == "done", "job not done: %r" % r["state"]
assert r.get("resumes", 0) >= 1, "job did not resume from a checkpoint"
assert r.get("checkpoint_seq", 0) >= 1, "no checkpoints recorded"
assert r.get("result"), "no result on the finished job"
'

kill -TERM "$SRV"
wait "$SRV" || { echo "FAIL: non-zero exit after SIGTERM (jobs)"; exit 1; }
SRV=""
echo "PASS: kill-and-resume — SIGKILL mid-job, restart recovers and completes from checkpoint"

# ---- Phase 6: overload & brownout -----------------------------------

# 6a. Overload burst: a 2-worker daemon with a tiny admission queue and
# fault-paced (slow) computes takes a 12-way burst of distinct requests:
# the admitted ones succeed, the surplus is shed promptly with 429 +
# Retry-After, the admission counters reconcile exactly, and the daemon
# serves normally the moment the burst ends.
LCN_FAULTS="thermal.slow=always;delay=250ms" \
  /tmp/lcn-serve-smoke -addr "$ADDR" -scale "$CHAOS_SCALE" -workers 2 -max-queue 2 >"$OUT" &
SRV=$!

for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  [ "$i" = 50 ] && { echo "FAIL: overload server never became healthy"; exit 1; }
  sleep 0.2
done

BURST="$(mktemp -d)"
pids=()
for i in $(seq 1 12); do
  curl -s -o /dev/null -D "$BURST/$i.hdr" -w '%{http_code}' -XPOST \
    -d "{\"case\":1,\"model\":\"2rm\",\"coarse_m\":4,\"network\":{\"generator\":\"straight\"},\"psys\":$((9600 + i))}" \
    "http://$ADDR/v1/simulate" >"$BURST/$i.code" &
  pids+=($!)
done
for p in "${pids[@]}"; do wait "$p"; done

oks=0; sheds=0
for i in $(seq 1 12); do
  got="$(cat "$BURST/$i.code")"
  case "$got" in
    200) oks=$((oks + 1)) ;;
    429)
      sheds=$((sheds + 1))
      grep -qi '^retry-after:' "$BURST/$i.hdr" \
        || { echo "FAIL: 429 without Retry-After header"; exit 1; }
      ;;
    *) echo "FAIL: burst request $i got $got, want 200 or 429"; exit 1 ;;
  esac
done
rm -rf "$BURST"
[ "$oks" -ge 1 ] && [ "$sheds" -ge 1 ] \
  || { echo "FAIL: burst resolved $oks OK / $sheds shed, want both nonzero"; exit 1; }

curl -sf "http://$ADDR/v1/metrics" | python3 -c '
import json, sys
m = json.load(sys.stdin)
o = m["overload"]
a = o["admission"]["interactive"]
print("overload metrics:", {"shed": o["shed"], "admission": a,
    "brownout": o["brownout"]["level_name"], "limit": o["admission"]["limit"]})
assert o["shed"] >= 1, "no admission sheds counted"
assert a["offered"] == a["admitted"] + a["shed"] + a["abandoned"] + a["waiting"], \
    "admission counters do not reconcile: %r" % a
assert m["in_flight"] == 0 and m["queue_depth"] == 0, "leaked worker slots"
'

# The burst is over: the very next request must be a plain 200.
got="$(curl -s -o /dev/null -w '%{http_code}' -XPOST \
  -d '{"case":1,"model":"2rm","coarse_m":4,"network":{"generator":"straight"},"psys":9999}' \
  "http://$ADDR/v1/simulate")"
[ "$got" = 200 ] || { echo "FAIL: post-burst request got $got, want 200"; exit 1; }

kill -TERM "$SRV"
wait "$SRV" || { echo "FAIL: non-zero exit after SIGTERM (overload)"; exit 1; }
SRV=""
echo "PASS: overload — burst shed with 429 + Retry-After, counters reconcile, prompt recovery"

# 6b. Breaker chaos: with overload.breaker=always armed, every peer call
# is refused locally by a tripped circuit breaker — no network attempt —
# and remote-owned requests degrade to local compute, never to an error.
# The per-peer health rows must show the open breaker.
LCN_FAULTS="overload.breaker=always" \
  /tmp/lcn-serve-smoke -addr "$B" -scale "$CHAOS_SCALE" -self "$B" -peers "$B,$C" >/dev/null &
SRVB=$!
LCN_FAULTS="overload.breaker=always" \
  /tmp/lcn-serve-smoke -addr "$C" -scale "$CHAOS_SCALE" -self "$C" -peers "$B,$C" >/dev/null &
SRVC=$!

for node in "$B" "$C"; do
  for i in $(seq 1 50); do
    curl -sf "http://$node/healthz" >/dev/null && break
    [ "$i" = 50 ] && { echo "FAIL: breaker chaos node $node never became healthy"; exit 1; }
    sleep 0.2
  done
done

# Each key goes to BOTH nodes: exactly one of the two sees it as
# remote-owned and must take the breaker-refusal fallback path.
for p in 9700 9710 9720 9730; do
  for node in "$B" "$C"; do
    curl -sf -XPOST -d "{\"case\":1,\"model\":\"2rm\",\"coarse_m\":4,\"network\":{\"generator\":\"straight\"},\"psys\":$p}" \
      "http://$node/v1/simulate" >/dev/null \
      || { echo "FAIL: request failed under open breakers (psys=$p via $node)"; exit 1; }
  done
done

{ curl -sf "http://$B/v1/metrics"; curl -sf "http://$C/v1/metrics"; } | python3 -c '
import json, sys
nodes = [json.loads(l) for l in sys.stdin if l.strip()]
print("breaker chaos metrics:", [{
    "local_fallbacks": m["local_fallbacks"], "peer_hits": m["peer_hits"],
    "breaker_refusals": m["cluster"]["breaker_refusals"],
    "peer_health": m["cluster"].get("peer_health")} for m in nodes])
assert sum(m["local_fallbacks"] for m in nodes) >= 4, \
    "remote-owned requests did not fall back locally"
assert all(m["peer_hits"] == 0 for m in nodes), "peer tier succeeded despite open breakers"
assert sum(m["cluster"]["breaker_refusals"] for m in nodes) >= 1, "no breaker refusals counted"
rows = [r for m in nodes for r in (m["cluster"].get("peer_health") or [])]
assert any(r["breaker"] == "open" for r in rows), "no open breaker in peer health rows: %r" % rows
fired = sum(m.get("faults", {}).get("overload.breaker", {}).get("fired", 0) for m in nodes)
assert fired >= 1, "overload.breaker injection not visible"
'

kill -TERM "$SRVB" "$SRVC"
wait "$SRVB" || { echo "FAIL: breaker chaos node B non-zero exit after SIGTERM"; exit 1; }
wait "$SRVC" || { echo "FAIL: breaker chaos node C non-zero exit after SIGTERM"; exit 1; }
SRVB="" SRVC=""
echo "PASS: breaker chaos — open breakers refuse locally, fallback serves, health rows visible"

# ---- Phase 7: transient chaos ---------------------------------------

# Pump glitches every 3rd step (halved pressure) and the first two steps
# are paced: the stream must still deliver every thinned step plus the
# terminal result, and the injections must be visible in /v1/metrics.
TRANSIENT_BODY='{"case":1,"model":"2rm","coarse_m":4,"network":{"generator":"straight"},
  "schedule":{"dt":0.002,"steps":30,"psys":10000,
    "power":[{"kind":"dvfs","layer":-1,"t0":0.02,"factor":2.0}]},
  "every":5}'
LCN_FAULTS="thermal.transient.pump=every:3;thermal.transient.slow=first:2;delay=5ms" \
  /tmp/lcn-serve-smoke -addr "$ADDR" -scale "$CHAOS_SCALE" >"$OUT" &
SRV=$!

for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  [ "$i" = 50 ] && { echo "FAIL: transient server never became healthy"; exit 1; }
  sleep 0.2
done

# A malformed schedule must fail as a plain 400 before any SSE bytes.
got="$(curl -s -o /dev/null -w '%{http_code}' -XPOST \
  -d '{"case":1,"network":{"generator":"straight"},"schedule":{"dt":-1,"steps":10,"psys":10000}}' \
  "http://$ADDR/v1/transient")"
[ "$got" = 400 ] || { echo "FAIL: bad schedule got $got, want 400"; exit 1; }

curl -sfN -XPOST -d "$TRANSIENT_BODY" "http://$ADDR/v1/transient" | python3 -c '
import json, sys
events = []
name, data = None, None
for line in sys.stdin:
    line = line.rstrip("\n")
    if line.startswith("event: "):
        name = line[len("event: "):]
    elif line.startswith("data: "):
        data = json.loads(line[len("data: "):])
    elif not line and name is not None:
        events.append((name, data)); name, data = None, None
steps = [d for n, d in events if n == "step"]
print("transient stream:", [n for n, _ in events])
assert [s["step"] for s in steps] == [5, 10, 15, 20, 25, 30], \
    "thinned steps wrong: %r" % [s["step"] for s in steps]
assert all(s["t_peak"] > 300 and s["pump_w"] > 0 for s in steps), "implausible step records"
assert events[-1][0] == "result", "no terminal result event: %r" % [n for n, _ in events]
res = events[-1][1]
assert res["steps"] == 30, "result steps %r" % res["steps"]
assert res["peak"] >= res["final"] and res["pump_energy"] > 0, "implausible trace summary"
assert res["stats"]["Segments"] >= 2, "pump glitches produced no extra segments"
'

curl -sf "http://$ADDR/v1/metrics" | python3 -c '
import json, sys
m = json.load(sys.stdin)
t = m["transient"]
print("transient metrics:", t, "faults:", m.get("faults"))
assert t["runs"] == 1, "want 1 transient run, got %r" % t
assert t["steps"] == 30, "want 30 transient steps, got %r" % t
assert t["factorizations"] >= 1, "no factorizations counted"
f = m.get("faults") or {}
assert f.get("thermal.transient.pump", {}).get("fired", 0) >= 1, "pump injection not visible: %r" % f
assert f.get("thermal.transient.slow", {}).get("fired", 0) == 2, "pacing injection not visible: %r" % f
'

kill -TERM "$SRV"
wait "$SRV" || { echo "FAIL: non-zero exit after SIGTERM (transient)"; exit 1; }
SRV=""
echo "PASS: transient chaos — streamed trace under pump glitches, 400 pre-stream, counters visible"
