#!/usr/bin/env bash
# Integration smoke for cmd/lcn-serve: start the daemon at reduced
# scale, fire duplicate concurrent evaluations, assert the metrics show
# single-flight dedup and a result-cache hit, then check SIGTERM drains
# gracefully (exit 0 + final metrics line on stdout).
set -euo pipefail

ADDR="127.0.0.1:${LCN_SERVE_PORT:-18080}"
SCALE="${LCN_SERVE_SCALE:-51}"
BODY='{"case":1,"model":"2rm","coarse_m":4,"network":{"generator":"straight"}}'
OUT="$(mktemp)"
trap 'kill "$SRV" 2>/dev/null || true; rm -f "$OUT" /tmp/lcn-serve-smoke' EXIT

go build -o /tmp/lcn-serve-smoke ./cmd/lcn-serve
/tmp/lcn-serve-smoke -addr "$ADDR" -scale "$SCALE" >"$OUT" &
SRV=$!

for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  [ "$i" = 50 ] && { echo "FAIL: server never became healthy"; exit 1; }
  sleep 0.2
done

# Duplicate concurrent requests: exactly one evaluation should run, the
# rest coalesce onto it (single-flight).
pids=()
for _ in 1 2 3 4; do
  curl -sf -XPOST -d "$BODY" "http://$ADDR/v1/evaluate" >/dev/null &
  pids+=($!)
done
for p in "${pids[@]}"; do wait "$p"; done

# A repeat after completion must be a result-cache hit.
curl -sf -XPOST -d "$BODY" "http://$ADDR/v1/evaluate" >/dev/null

curl -sf "http://$ADDR/v1/metrics" | python3 -c '
import json, sys
m = json.load(sys.stdin)
print("metrics:", {k: m[k] for k in
    ("requests", "cache_hits", "cache_misses", "dedup_hits", "evaluations")})
assert m["evaluations"] == 1, "want 1 evaluation, got %d" % m["evaluations"]
assert m["dedup_hits"] > 0, "no single-flight dedup observed"
assert m["cache_hits"] > 0, "no result-cache hit observed"
assert m["errors"] == 0 and m["timeouts"] == 0, "unexpected failures"
'

kill -TERM "$SRV"
wait "$SRV" || { echo "FAIL: non-zero exit after SIGTERM"; exit 1; }
grep -q '"cache_hits"' "$OUT" || { echo "FAIL: no final metrics line"; exit 1; }
echo "PASS: dedup + cache hit + graceful drain"
