package lcn3d

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation section, plus ablation benches for the design
// choices called out in DESIGN.md. Benchmarks run at a reduced scale by
// default so `go test -bench=.` finishes in minutes; set LCN_SCALE=101
// and LCN_FULL=1 for paper-scale runs (cmd/lcn-bench is the friendlier
// front end for those).

import (
	"context"
	"io"
	"math"
	"os"
	"strconv"
	"testing"

	"lcn3d/internal/core"
	"lcn3d/internal/experiments"
	"lcn3d/internal/grid"
	"lcn3d/internal/iccad"
	"lcn3d/internal/network"
	"lcn3d/internal/rm2"
	"lcn3d/internal/rm4"
	"lcn3d/internal/thermal"
)

func benchScale() int {
	if s := os.Getenv("LCN_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 10 {
			return v
		}
	}
	return 31
}

func benchCfg() experiments.Config {
	return experiments.Config{
		Scale: benchScale(),
		Full:  os.Getenv("LCN_FULL") == "1",
		Seed:  1,
		Out:   io.Discard,
	}
}

// BenchmarkTable2Load regenerates the benchmark-statistics table.
func BenchmarkTable2Load(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5PressureSweep regenerates the temperature-vs-pressure
// turning point curves.
func BenchmarkFig5PressureSweep(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6DeltaTProfile regenerates the ΔT = f(P_sys) profiles.
func BenchmarkFig6DeltaTProfile(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Accuracy regenerates the 2RM-vs-4RM accuracy/speed-up
// sweep (both panels of Fig. 9 come from the same sweep).
func BenchmarkFig9Accuracy(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Problem1 regenerates the pumping-power-minimization
// comparison across all five cases.
func BenchmarkTable3Problem1(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Problem2 regenerates the thermal-gradient-minimization
// comparison across all five cases.
func BenchmarkTable4Problem2(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10TemperatureMaps regenerates the case-1 temperature maps
// for both problem formulations.
func BenchmarkFig10TemperatureMaps(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Raw simulator benches backing Fig. 9(b)'s speed-up numbers. ---

func benchModels(b *testing.B) (*iccad.Benchmark, []*network.Network) {
	b.Helper()
	bench, err := iccad.LoadScaled(1, grid.Dims{NX: benchScale(), NY: benchScale()})
	if err != nil {
		b.Fatal(err)
	}
	n := network.Straight(bench.Stk.Dims, grid.SideWest, 1)
	nets := make([]*network.Network, len(bench.Stk.ChannelLayers()))
	for i := range nets {
		nets[i] = n
	}
	return bench, nets
}

// benchPressures is the probe cycle used by the warm simulator benches:
// repeated probes on one model at nearby-but-distinct pressures, the
// access pattern of the Algorithm 2/3 searches.
var benchPressures = []float64{8e3, 10e3, 12e3, 16e3, 9e3, 20e3}

// BenchmarkRM4Simulate times steady 4RM probes on a shared model (the
// amortized path: in-place reassembly, warm starts, cached precond).
func BenchmarkRM4Simulate(b *testing.B) {
	bench, nets := benchModels(b)
	m, err := rm4.New(bench.Stk, nets, thermal.Central)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		out, err := m.Simulate(benchPressures[i%len(benchPressures)])
		if err != nil {
			b.Fatal(err)
		}
		iters += out.SolveIters
	}
	b.ReportMetric(float64(iters)/float64(b.N), "solveiters/op")
}

// BenchmarkRM4SimulateCold rebuilds the model every probe: the
// unamortized baseline the factored path is measured against.
func BenchmarkRM4SimulateCold(b *testing.B) {
	bench, nets := benchModels(b)
	b.ReportAllocs()
	iters := 0
	for i := 0; i < b.N; i++ {
		m, err := rm4.New(bench.Stk, nets, thermal.Central)
		if err != nil {
			b.Fatal(err)
		}
		out, err := m.Simulate(benchPressures[i%len(benchPressures)])
		if err != nil {
			b.Fatal(err)
		}
		iters += out.SolveIters
	}
	b.ReportMetric(float64(iters)/float64(b.N), "solveiters/op")
}

// BenchmarkRM2Simulate times steady 2RM probes on a shared model per
// cell size (the amortized path).
func BenchmarkRM2Simulate(b *testing.B) {
	bench, nets := benchModels(b)
	for _, m := range []int{1, 2, 4, 6} {
		mod, err := rm2.New(bench.Stk, nets, m, thermal.Central)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("m="+strconv.Itoa(m), func(b *testing.B) {
			b.ReportAllocs()
			iters := 0
			for i := 0; i < b.N; i++ {
				out, err := mod.Simulate(benchPressures[i%len(benchPressures)])
				if err != nil {
					b.Fatal(err)
				}
				iters += out.SolveIters
			}
			b.ReportMetric(float64(iters)/float64(b.N), "solveiters/op")
		})
	}
}

// BenchmarkRM2SimulateCold rebuilds the m=4 model every probe.
func BenchmarkRM2SimulateCold(b *testing.B) {
	bench, nets := benchModels(b)
	b.ReportAllocs()
	iters := 0
	for i := 0; i < b.N; i++ {
		mod, err := rm2.New(bench.Stk, nets, 4, thermal.Central)
		if err != nil {
			b.Fatal(err)
		}
		out, err := mod.Simulate(benchPressures[i%len(benchPressures)])
		if err != nil {
			b.Fatal(err)
		}
		iters += out.SolveIters
	}
	b.ReportMetric(float64(iters)/float64(b.N), "solveiters/op")
}

// BenchmarkNetworkEvaluation times Algorithm 2 (the inner loop of the SA
// search) with the 2RM simulator: a fresh network each op, a few dozen
// pressure probes inside. This is the per-candidate cost of the SA loop,
// and the end-to-end measure of the probe-amortization machinery.
func BenchmarkNetworkEvaluation(b *testing.B) {
	bench, nets := benchModels(b)
	b.ReportAllocs()
	var iters, warm, probes int
	for i := 0; i < b.N; i++ {
		mod, err := rm2.New(bench.Stk, nets, 4, thermal.Central)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.EvaluatePumpMin(context.Background(), core.Memo(mod.Simulate), bench.DeltaTStar, bench.TmaxStar, core.SearchOptions{}); err != nil {
			b.Fatal(err)
		}
		st := mod.FactorStats()
		iters += st.SolveIters
		warm += st.WarmStarts
		probes += st.Probes
	}
	b.ReportMetric(float64(iters)/float64(b.N), "solveiters/op")
	if probes > 0 {
		b.ReportMetric(float64(warm)/float64(probes), "warmrate")
	}
}

// --- Ablation benches (DESIGN.md Section 6). ---

// BenchmarkAblationConvectionScheme contrasts the paper's central
// differencing (Eq. (6)) with the upwind variant: runtime and the
// resulting peak temperature are reported as metrics.
func BenchmarkAblationConvectionScheme(b *testing.B) {
	bench, nets := benchModels(b)
	for _, sc := range []thermal.Scheme{thermal.Central, thermal.Upwind} {
		m, err := rm4.New(bench.Stk, nets, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sc.String(), func(b *testing.B) {
			var tmax float64
			for i := 0; i < b.N; i++ {
				out, err := m.Simulate(10e3)
				if err != nil {
					b.Fatal(err)
				}
				tmax = out.Tmax
			}
			b.ReportMetric(tmax-300, "Krise")
		})
	}
}

// BenchmarkAblationSAStages contrasts the paper's multi-stage SA schedule
// with a single-stage schedule of the same total evaluation budget,
// reporting the achieved pumping power as a metric.
func BenchmarkAblationSAStages(b *testing.B) {
	bench, _ := benchModels(b)
	schedules := map[string][]core.Stage{
		"multi-stage": {
			{Iterations: 6, Rounds: 2, Step: 8, FixedPsys: true},
			{Iterations: 6, Rounds: 1, Step: 2},
		},
		"single-stage": {
			{Iterations: 12, Rounds: 1, Step: 4},
		},
	}
	for name, stages := range schedules {
		b.Run(name, func(b *testing.B) {
			var wp float64
			for i := 0; i < b.N; i++ {
				sol, err := bench.SolveProblem1(core.Options{Seed: int64(i + 1), Stages: stages})
				if err != nil {
					b.Fatal(err)
				}
				if sol.Eval.Feasible {
					wp = sol.Eval.Wpump * 1e3
				} else {
					wp = math.Inf(1)
				}
			}
			b.ReportMetric(wp, "mW")
		})
	}
}

// BenchmarkAblationStage1Cost contrasts the two candidate-evaluation
// metrics of the SA stages: stage 1's single simulation at a fixed
// pressure vs the full lowest-feasible-pumping-power evaluation
// (Algorithm 2). The runtime gap is why the paper's schedule runs its
// cheap stage first.
func BenchmarkAblationStage1Cost(b *testing.B) {
	bench, _ := benchModels(b)
	n := network.Straight(bench.Stk.Dims, grid.SideWest, 1)
	b.Run("fixed-psys", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim, err := bench.Sim2RM(n, 4, thermal.Central)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim(10e3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim, err := bench.Sim2RM(n, 4, thermal.Central)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.EvaluatePumpMin(context.Background(), sim, bench.DeltaTStar, bench.TmaxStar, core.SearchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGroupedEval measures the Problem 2 grouped-iteration
// re-evaluation trick (Section 5 technique 2): grouped vs ungrouped
// candidate evaluation cost.
func BenchmarkAblationGroupedEval(b *testing.B) {
	bench, _ := benchModels(b)
	for name, group := range map[string]int{"grouped": 4, "ungrouped": 0} {
		stages := []core.Stage{{Iterations: 6, Rounds: 1, Step: 4, GroupSize: group}}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.SolveProblem2(core.Options{Seed: 1, Stages: stages}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRM2Variant contrasts the paper's 2RM side-wall
// folding (Eq. (8)) against the LateralSL extension on a tree network,
// reporting the mean relative error vs 4RM as a metric.
func BenchmarkAblationRM2Variant(b *testing.B) {
	bench, _ := benchModels(b)
	d := bench.Stk.Dims
	tr, err := network.Tree(d, network.UniformTreeSpec(d, max(1, d.NY/8), network.Branch2, 0.35, 0.65))
	if err != nil {
		b.Fatal(err)
	}
	nets := make([]*network.Network, len(bench.Stk.ChannelLayers()))
	for i := range nets {
		nets[i] = tr
	}
	m4, err := rm4.New(bench.Stk, nets, thermal.Central)
	if err != nil {
		b.Fatal(err)
	}
	o4, err := m4.Simulate(10e3)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []rm2.Variant{rm2.Paper2RM, rm2.LateralSL} {
		b.Run(variant.String(), func(b *testing.B) {
			var meanErr float64
			for i := 0; i < b.N; i++ {
				mod, err := rm2.New(bench.Stk, nets, 4, thermal.Central)
				if err != nil {
					b.Fatal(err)
				}
				mod.Variant = variant
				o2, err := mod.Simulate(10e3)
				if err != nil {
					b.Fatal(err)
				}
				var sum float64
				for k := range o4.FineTemps[0] {
					sum += math.Abs(o2.FineTemps[0][k]-o4.FineTemps[0][k]) / o4.FineTemps[0][k]
				}
				meanErr = sum / float64(len(o4.FineTemps[0]))
			}
			b.ReportMetric(100*meanErr, "%err")
		})
	}
}

// BenchmarkFlowSolve times the pressure/flow solve alone (Eq. (3)).
func BenchmarkFlowSolve(b *testing.B) {
	bench, _ := benchModels(b)
	n := network.Straight(bench.Stk.Dims, grid.SideWest, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rm4.New(bench.Stk, []*network.Network{n}, thermal.Central); err != nil {
			b.Fatal(err)
		}
	}
}
