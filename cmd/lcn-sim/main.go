// Command lcn-sim runs one steady (or transient) cooling simulation on an
// ICCAD benchmark case and prints the thermal metrics, optionally dumping
// the bottom-source-layer temperature map.
//
// Examples:
//
//	lcn-sim -case 1 -net straight -psys 12980
//	lcn-sim -case 2 -scale 51 -net tree -trees 3 -psys 8000 -model 2rm -m 4
//	lcn-sim -case 1 -net tree -psys 9000 -heatmap /tmp/case1.ppm -art
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"lcn3d"
	"lcn3d/internal/network"
	"lcn3d/internal/report"
	"lcn3d/internal/stack"
)

// buildNet constructs one of the named network styles.
func buildNet(kind string, d lcn3d.Dims, trees int, b1, b2 float64) *lcn3d.Network {
	switch kind {
	case "straight":
		return lcn3d.StraightNetwork(d)
	case "tree":
		if trees <= 0 {
			trees = max(1, d.NY/8)
		}
		net, err := lcn3d.TreeNetwork(d, trees, lcn3d.Branch2, b1, b2)
		if err != nil {
			log.Fatal(err)
		}
		return net
	case "mesh":
		return lcn3d.MeshNetwork(d, 1, 4)
	case "serpentine":
		return lcn3d.SerpentineNetwork(d)
	default:
		log.Fatalf("unknown network kind %q", kind)
		return nil
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lcn-sim: ")

	caseID := flag.Int("case", 1, "ICCAD 2015 benchmark case (1-5)")
	scale := flag.Int("scale", 101, "grid size n (n x n basic cells; 101 = full contest scale)")
	netKind := flag.String("net", "straight", "network: straight | tree | mesh | serpentine")
	netFile := flag.String("netfile", "", "load the network from this file instead of -net (e.g. one saved by lcn-opt -save)")
	trees := flag.Int("trees", 0, "tree count for -net tree (0 = auto)")
	b1 := flag.Float64("b1", 0.35, "first branch fraction for -net tree")
	b2 := flag.Float64("b2", 0.65, "second branch fraction for -net tree")
	psys := flag.Float64("psys", 10e3, "system pressure drop, Pa")
	model := flag.String("model", "4rm", "thermal model: 4rm | 2rm")
	mFactor := flag.Int("m", 4, "2RM coarsening factor (basic cells per thermal cell)")
	upwind := flag.Bool("upwind", false, "use the upwind convection scheme")
	heatmap := flag.String("heatmap", "", "write bottom source layer as PPM to this path")
	art := flag.Bool("art", false, "print the temperature map as ASCII art")
	netArt := flag.Bool("netart", false, "print the network layout")
	dumpStack := flag.String("dumpstack", "", "write the benchmark's stack description + floorplan file to this path")
	flag.Parse()

	bench, err := lcn3d.LoadBenchmarkScaled(*caseID, *scale)
	if err != nil {
		log.Fatal(err)
	}
	d := bench.Stk.Dims

	if *dumpStack != "" {
		f, err := os.Create(*dumpStack)
		if err != nil {
			log.Fatal(err)
		}
		if err := stack.Format(f, bench.Stk); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote stack description to %s\n", *dumpStack)
	}

	var net *lcn3d.Network
	if *netFile != "" {
		f, err := os.Open(*netFile)
		if err != nil {
			log.Fatal(err)
		}
		net, err = network.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if net.Dims != d {
			log.Fatalf("network file grid %v does not match benchmark grid %v (use -scale)", net.Dims, d)
		}
		*netKind = "file:" + *netFile
	} else {
		net = buildNet(*netKind, d, *trees, *b1, *b2)
	}
	bench.ApplyKeepout(net)
	if errs := net.Check(); len(errs) > 0 {
		log.Fatalf("network violates design rules: %v", errs[0])
	}
	if *netArt {
		fmt.Print(net.String())
	}

	cfg := lcn3d.SimConfig{Psys: *psys, Upwind: *upwind}
	if *model == "2rm" {
		cfg.Use2RM = true
		cfg.CoarseM = *mFactor
	}
	out, err := lcn3d.Simulate(bench, net, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("case %d (%s)  grid %v  net %s  model %s\n",
		*caseID, bench.Spec.Other, d, *netKind, *model)
	fmt.Printf("P_sys   = %10.2f kPa\n", out.Psys/1e3)
	fmt.Printf("Q_sys   = %10.4f mL/s\n", out.Qsys*1e6)
	fmt.Printf("W_pump  = %10.4f mW\n", out.Wpump*1e3)
	fmt.Printf("T_max   = %10.2f K   (constraint %.2f K)\n", out.Tmax, bench.TmaxStar)
	fmt.Printf("DeltaT  = %10.2f K   (constraint %.2f K)\n", out.DeltaT, bench.DeltaTStar)
	for i, st := range out.PerLayer {
		fmt.Printf("  source layer %d: min %.2f  max %.2f  mean %.2f  range %.2f K\n",
			i+1, st.Min, st.Max, st.Mean, st.Range())
	}

	hm := &report.Heatmap{Dims: out.FineDims, V: out.FineTemps[0]}
	if *art {
		fmt.Println("bottom source layer (north up):")
		fmt.Print(hm.ASCII(64))
	}
	if *heatmap != "" {
		f, err := os.Create(*heatmap)
		if err != nil {
			log.Fatal(err)
		}
		if err := hm.WritePPM(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *heatmap)
	}
}
