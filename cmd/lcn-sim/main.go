// Command lcn-sim runs one steady (or transient) cooling simulation on an
// ICCAD benchmark case and prints the thermal metrics, optionally dumping
// the bottom-source-layer temperature map.
//
// Examples:
//
//	lcn-sim -case 1 -net straight -psys 12980
//	lcn-sim -case 2 -scale 51 -net tree -trees 3 -psys 8000 -model 2rm -m 4
//	lcn-sim -case 1 -net tree -psys 9000 -heatmap /tmp/case1.ppm -art
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"lcn3d"
	"lcn3d/internal/network"
	"lcn3d/internal/report"
	"lcn3d/internal/rm2"
	"lcn3d/internal/rm4"
	"lcn3d/internal/scenario"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

// buildNet constructs one of the named network styles.
func buildNet(kind string, d lcn3d.Dims, trees int, b1, b2 float64) *lcn3d.Network {
	switch kind {
	case "straight":
		return lcn3d.StraightNetwork(d)
	case "tree":
		if trees <= 0 {
			trees = max(1, d.NY/8)
		}
		net, err := lcn3d.TreeNetwork(d, trees, lcn3d.Branch2, b1, b2)
		if err != nil {
			log.Fatal(err)
		}
		return net
	case "mesh":
		return lcn3d.MeshNetwork(d, 1, 4)
	case "serpentine":
		return lcn3d.SerpentineNetwork(d)
	default:
		log.Fatalf("unknown network kind %q", kind)
		return nil
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lcn-sim: ")

	caseID := flag.Int("case", 1, "ICCAD 2015 benchmark case (1-5)")
	scale := flag.Int("scale", 101, "grid size n (n x n basic cells; 101 = full contest scale)")
	netKind := flag.String("net", "straight", "network: straight | tree | mesh | serpentine")
	netFile := flag.String("netfile", "", "load the network from this file instead of -net (e.g. one saved by lcn-opt -save)")
	trees := flag.Int("trees", 0, "tree count for -net tree (0 = auto)")
	b1 := flag.Float64("b1", 0.35, "first branch fraction for -net tree")
	b2 := flag.Float64("b2", 0.65, "second branch fraction for -net tree")
	psys := flag.Float64("psys", 10e3, "system pressure drop, Pa")
	model := flag.String("model", "4rm", "thermal model: 4rm | 2rm")
	mFactor := flag.Int("m", 4, "2RM coarsening factor (basic cells per thermal cell)")
	upwind := flag.Bool("upwind", false, "use the upwind convection scheme")
	transient := flag.Bool("transient", false, "run a transient trace instead of a steady solve")
	dt := flag.Float64("dt", 1e-3, "transient time step, s")
	steps := flag.Int("steps", 100, "transient step count")
	schedule := flag.String("schedule", "", "transient scenario JSON file (overrides -dt/-steps and adds power/pump events)")
	every := flag.Int("every", 10, "print one transient step line per this many steps")
	heatmap := flag.String("heatmap", "", "write bottom source layer as PPM to this path")
	art := flag.Bool("art", false, "print the temperature map as ASCII art")
	netArt := flag.Bool("netart", false, "print the network layout")
	dumpStack := flag.String("dumpstack", "", "write the benchmark's stack description + floorplan file to this path")
	flag.Parse()

	bench, err := lcn3d.LoadBenchmarkScaled(*caseID, *scale)
	if err != nil {
		log.Fatal(err)
	}
	d := bench.Stk.Dims

	if *dumpStack != "" {
		f, err := os.Create(*dumpStack)
		if err != nil {
			log.Fatal(err)
		}
		if err := stack.Format(f, bench.Stk); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote stack description to %s\n", *dumpStack)
	}

	var net *lcn3d.Network
	if *netFile != "" {
		f, err := os.Open(*netFile)
		if err != nil {
			log.Fatal(err)
		}
		net, err = network.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if net.Dims != d {
			log.Fatalf("network file grid %v does not match benchmark grid %v (use -scale)", net.Dims, d)
		}
		*netKind = "file:" + *netFile
	} else {
		net = buildNet(*netKind, d, *trees, *b1, *b2)
	}
	bench.ApplyKeepout(net)
	if errs := net.Check(); len(errs) > 0 {
		log.Fatalf("network violates design rules: %v", errs[0])
	}
	if *netArt {
		fmt.Print(net.String())
	}

	if *transient {
		runTransient(bench, net, *model, *mFactor, *upwind, *psys,
			*dt, *steps, *schedule, *every, *caseID, *netKind)
		return
	}

	cfg := lcn3d.SimConfig{Psys: *psys, Upwind: *upwind}
	if *model == "2rm" {
		cfg.Use2RM = true
		cfg.CoarseM = *mFactor
	}
	out, err := lcn3d.Simulate(bench, net, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("case %d (%s)  grid %v  net %s  model %s\n",
		*caseID, bench.Spec.Other, d, *netKind, *model)
	fmt.Printf("P_sys   = %10.2f kPa\n", out.Psys/1e3)
	fmt.Printf("Q_sys   = %10.4f mL/s\n", out.Qsys*1e6)
	fmt.Printf("W_pump  = %10.4f mW\n", out.Wpump*1e3)
	fmt.Printf("T_max   = %10.2f K   (constraint %.2f K)\n", out.Tmax, bench.TmaxStar)
	fmt.Printf("DeltaT  = %10.2f K   (constraint %.2f K)\n", out.DeltaT, bench.DeltaTStar)
	for i, st := range out.PerLayer {
		fmt.Printf("  source layer %d: min %.2f  max %.2f  mean %.2f  range %.2f K\n",
			i+1, st.Min, st.Max, st.Mean, st.Range())
	}

	hm := &report.Heatmap{Dims: out.FineDims, V: out.FineTemps[0]}
	if *art {
		fmt.Println("bottom source layer (north up):")
		fmt.Print(hm.ASCII(64))
	}
	if *heatmap != "" {
		f, err := os.Create(*heatmap)
		if err != nil {
			log.Fatal(err)
		}
		if err := hm.WritePPM(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *heatmap)
	}
}

// runTransient integrates a transient scenario on the selected model and
// prints a thinned step trace plus the summary. With no -schedule file
// the trace is a constant-power, constant-pressure hold at -psys.
func runTransient(bench *lcn3d.Benchmark, net *lcn3d.Network, model string, mFactor int,
	upwind bool, psys, dt float64, steps int, scheduleFile string, every, caseID int, netKind string) {
	spec := &scenario.Spec{Dt: dt, Steps: steps, Psys: psys}
	if scheduleFile != "" {
		f, err := os.Open(scheduleFile)
		if err != nil {
			log.Fatal(err)
		}
		spec, err = scenario.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	scheme := thermal.Central
	if upwind {
		scheme = thermal.Upwind
	}
	nets := make([]*network.Network, len(bench.Stk.ChannelLayers()))
	for i := range nets {
		nets[i] = net
	}
	var m scenario.Model
	var err error
	if model == "2rm" {
		m, err = rm2.New(bench.Stk, nets, mFactor, scheme)
	} else {
		m, err = rm4.New(bench.Stk, nets, scheme)
	}
	if err != nil {
		log.Fatal(err)
	}

	if every <= 0 {
		every = 1
	}
	fmt.Printf("case %d  grid %v  net %s  model %s  dt %g s  steps %d\n",
		caseID, bench.Stk.Dims, netKind, model, spec.Dt, spec.Steps)
	fmt.Printf("%10s %12s %10s %10s %12s\n", "t [s]", "P_sys [kPa]", "T_peak [K]", "dT [K]", "W_pump [mW]")
	res, err := scenario.Run(context.Background(), m, spec, func(rec scenario.StepRecord) error {
		if rec.Step%every != 0 && rec.Step != spec.Steps {
			return nil
		}
		fmt.Printf("%10.4f %12.2f %10.3f %10.3f %12.4f\n",
			rec.T, rec.Psys/1e3, rec.Tpeak, rec.DeltaT, rec.PumpW*1e3)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peak    = %10.3f K at t=%.4f s (overshoot %.3f K)\n", res.Peak, res.PeakTime, res.Overshoot)
	fmt.Printf("final   = %10.3f K  dT %.3f K\n", res.Final, res.FinalDT)
	fmt.Printf("steady  = %10.4f s\n", res.SteadyTime)
	fmt.Printf("E_pump  = %10.4f mJ\n", res.PumpEnergy*1e3)
	fmt.Printf("solver  : %d steps, %d segments, %d factorizations, %d iters\n",
		res.Stats.Steps, res.Stats.Segments, res.Stats.PrecondBuilds, res.Stats.SolveIters)
}
