package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"lcn3d/internal/faults"
	"lcn3d/internal/jobs"
	"lcn3d/internal/service"
	"lcn3d/internal/store"
)

func optimizeReq() service.OptimizeRequest {
	return service.OptimizeRequest{
		CaseRef:       service.CaseRef{Case: 1, Scale: 15},
		Seed:          7,
		Chains:        2,
		ExchangeEvery: 1,
		NumTrees:      2,
		Branch:        2,
		CoarseM:       3,
	}
}

// TestShutdownSequenceCheckpointsAndResumes is the satellite-3 ordered
// shutdown test: SIGTERM's shutdownSequence must checkpoint running
// jobs into the store BEFORE the final flush, so a restarted process
// recovers the job and finishes it with the same solution as an
// uninterrupted run.
func TestShutdownSequenceCheckpointsAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SA optimizer")
	}
	dir := t.TempDir()
	// Auto-flush disabled: every durable byte below must come from the
	// drain-ordered flush inside shutdownSequence, not a timer.
	st, err := store.Open(dir, store.Options{
		FlushCount:    1 << 20,
		FlushBytes:    1 << 30,
		FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Store: st, Scale: 15})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()

	// Pace probes so the job is mid-run when the shutdown lands.
	if err := faults.Arm("thermal.slow=always;delay=3ms"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()

	body, _ := json.Marshal(optimizeReq())
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var rec jobs.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rec.ID == "" {
		t.Fatalf("submit returned %+v", rec)
	}

	// Wait until at least one checkpoint exists, then shut down.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		r, err := http.Get(base + "/v1/jobs/" + rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur jobs.Record
		if err := json.NewDecoder(r.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if cur.CheckpointSeq >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never checkpointed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	final, err := shutdownSequence(srv, svc, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	faults.Disarm()
	var snap service.MetricsSnapshot
	if err := json.Unmarshal(final, &snap); err != nil {
		t.Fatalf("final metrics line: %v", err)
	}
	if snap.Optimize.Checkpoints < 1 {
		t.Fatalf("final metrics report %d checkpoints, want >= 1", snap.Optimize.Checkpoints)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The drained state must be durable: the newest record on disk says
	// checkpointed, not running or lost.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	prefix := "job/" + rec.ID + "/rec/"
	var newest uint64
	for _, k := range st2.Keys(prefix) {
		if s, err := strconv.ParseUint(k[len(prefix):], 10, 64); err == nil && s > newest {
			newest = s
		}
	}
	if newest == 0 {
		t.Fatal("no durable job records after drain")
	}
	blob, ok := st2.Get(prefix + strconv.FormatUint(newest, 10))
	if !ok {
		t.Fatalf("newest record %d unreadable", newest)
	}
	var durable jobs.Record
	if err := json.Unmarshal(blob, &durable); err != nil {
		t.Fatal(err)
	}
	if durable.State != jobs.StateCheckpointed || durable.CheckpointSeq < 1 {
		t.Fatalf("durable record %+v, want checkpointed with a checkpoint", durable)
	}

	// A restarted process recovers and finishes the job...
	svc2 := service.New(service.Config{Store: st2, Scale: 15})
	if n := svc2.RecoverJobs(); n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	var done jobs.Record
	deadline = time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		done, err = svc2.JobStatus(context.Background(), rec.ID)
		if err == nil && done.State.Terminal() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if done.State != jobs.StateDone || done.Resumes < 1 {
		t.Fatalf("recovered job ended as %+v", done)
	}

	// ...with the same solution as an uninterrupted run.
	straightSvc := service.New(service.Config{Scale: 15})
	buf, err := straightSvc.Optimize(context.Background(), optimizeReq())
	if err != nil {
		t.Fatal(err)
	}
	var got, want service.OptimizeResponse
	if err := json.Unmarshal(done.Result, &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if got.NetworkHash != want.NetworkHash || got.Psys != want.Psys ||
		got.Wpump != want.Wpump || got.Evals != want.Evals ||
		got.Exchanges != want.Exchanges {
		t.Fatalf("resumed solution differs:\n got %+v\nwant %+v", got, want)
	}
}
