// Command lcn-serve exposes the evaluation engine as an HTTP JSON
// service with content-addressed caching, single-flight deduplication
// of concurrent identical requests, a bounded worker pool, and metrics.
// With -store it persists results to a disk-backed content-addressed
// store that survives restarts; with -peers it shards work across a
// static fleet by consistent hashing, forwarding each request to the
// cache key's owner.
//
//	lcn-serve -addr :8080 -scale 51
//	lcn-serve -addr :8080 -store /var/lib/lcn -self host1:8080 \
//	          -peers host1:8080,host2:8080,host3:8080
//
// Endpoints:
//
//	POST /v1/simulate     one flow+thermal probe at a fixed pressure
//	POST /v1/evaluate     Algorithm 2/3 lowest-feasible-P_sys evaluation
//	POST /v1/transient    streamed transient trace (SSE step + result events)
//	POST /v1/optimize     multi-chain SA optimization (single or batch)
//	GET  /v1/store/{hash} cached response bytes by cache key (peer fetch)
//	GET  /v1/metrics      counters, rates, and latency quantiles
//	GET  /healthz         readiness (503 once draining)
//
// On SIGTERM or SIGINT the server stops accepting connections, drains
// in-flight evaluations, flushes pending store batches to disk, writes
// a final metrics line to stdout, and exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lcn3d/internal/cluster"
	"lcn3d/internal/faults"
	"lcn3d/internal/overload"
	"lcn3d/internal/service"
	"lcn3d/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lcn-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Int("scale", 0, "default grid size for requests without one (0 = full 101x101)")
	workers := flag.Int("workers", 0, "max concurrent evaluations (0 = NumCPU)")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-request deadline")
	resultCache := flag.Int("result-cache", 4096, "result cache entries")
	modelCache := flag.Int("model-cache", 16, "warm model bindings kept")
	storeDir := flag.String("store", "", "directory of the persistent result store (empty = memory only)")
	peers := flag.String("peers", "", "comma-separated host:port fleet members incl. this node (overrides LCN_PEERS; empty = standalone)")
	self := flag.String("self", "", "this node's host:port as it appears in -peers (required with -peers)")
	faultSpec := flag.String("faults", "", "fault-injection plan, e.g. 'solver.bicgstab.breakdown=always;service.panic=first:1' (overrides "+faults.EnvVar+")")
	latencyTarget := flag.Duration("latency-target", 5*time.Second, "admission AIMD latency target; sustained misses cut the concurrency limit")
	maxQueue := flag.Int("max-queue", 0, "max requests waiting for admission before shedding (0 = 4x workers)")
	hedgeAfter := flag.Duration("hedge-after", overload.DefaultHedgeAfter, "delay before hedging a peer store read with local compute (negative = never hedge)")
	breakerOpenFor := flag.Duration("breaker-open-for", 10*time.Second, "how long a tripped per-peer circuit breaker refuses before probing")
	retryRatio := flag.Float64("retry-ratio", 0.1, "retry budget earned per successful forward (negative = no retries)")
	brownoutHold := flag.Duration("brownout-hold", 3*time.Second, "minimum dwell at a brownout level before de-escalating")
	flag.Parse()

	// Fault injection for chaos drills: the flag wins over the LCN_FAULTS
	// environment variable. Never arm this in normal production serving.
	if *faultSpec != "" {
		if err := faults.Arm(*faultSpec); err != nil {
			log.Fatalf("-faults: %v", err)
		}
		log.Printf("fault injection ARMED: %s", *faultSpec)
	} else if spec, err := faults.ArmFromEnv(os.Getenv); err != nil {
		log.Fatalf("%s: %v", faults.EnvVar, err)
	} else if spec != "" {
		log.Printf("fault injection ARMED from %s: %s", faults.EnvVar, spec)
	}

	cfg := service.Config{
		Scale:           *scale,
		Workers:         *workers,
		ResultCacheSize: *resultCache,
		ModelCacheSize:  *modelCache,
		DefaultTimeout:  *timeout,
		Overload: overload.Options{
			Admission: overload.AdmissionConfig{
				LatencyTarget: *latencyTarget,
				MaxQueue:      *maxQueue,
			},
			HedgeAfter: *hedgeAfter,
			Brownout:   overload.BrownoutConfig{Hold: *brownoutHold},
		},
	}

	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			log.Fatalf("-store %s: %v", *storeDir, err)
		}
		defer st.Close()
		stats := st.Stats()
		log.Printf("store %s: %d records in %d segments (%d recovered, %d skipped)",
			*storeDir, stats.Records, stats.Segments, stats.RecoveredRecords, stats.SkippedRecords)
		cfg.Store = st
	}

	peerList := *peers
	if peerList == "" {
		peerList = os.Getenv("LCN_PEERS")
	}
	if peerList != "" {
		if *self == "" {
			log.Fatalf("-peers requires -self (this node's host:port)")
		}
		cl, err := cluster.New(cluster.Options{
			Self:           *self,
			Peers:          strings.Split(peerList, ","),
			ForwardTimeout: *timeout,
			Breaker:        overload.BreakerConfig{OpenFor: *breakerOpenFor},
			RetryRatio:     *retryRatio,
		})
		if err != nil {
			log.Fatalf("cluster: %v", err)
		}
		cl.Start(context.Background())
		defer cl.Stop()
		log.Printf("cluster: self=%s peers=%s", *self, peerList)
		cfg.Cluster = cl
	}

	svc := service.New(cfg)
	// Resume-on-startup: jobs persisted by a previous process (drained or
	// crashed) re-enter the queue from their newest readable checkpoint.
	if n := svc.RecoverJobs(); n > 0 {
		log.Printf("jobs: recovered %d persisted job(s) from the store", n)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (scale=%d workers=%d timeout=%v)",
		*addr, *scale, *workers, *timeout)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received, draining")

	final, err := shutdownSequence(srv, svc, *timeout+10*time.Second)
	if err != nil {
		log.Fatalf("final metrics: %v", err)
	}
	os.Stdout.Write(append(final, '\n'))
	log.Printf("drained, exiting")
}

// shutdownSequence is the ordered SIGTERM path: stop accepting
// connections (in-flight HTTP handlers get the grace period), then
// drain the service — running jobs checkpoint to the store, in-flight
// evaluations finish, and the pending store batch is flushed — and
// finally snapshot metrics. The order matters: the metrics line must
// reflect the flushed, checkpointed state a restart will recover.
func shutdownSequence(srv *http.Server, svc *service.Service, grace time.Duration) ([]byte, error) {
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	svc.Drain()
	js := svc.JobStats()
	log.Printf("jobs at shutdown: %d checkpoint(s) written, states %v", js.Checkpoints, js.States)
	return json.Marshal(svc.Metrics())
}
