// Command lcn-serve exposes the evaluation engine as an HTTP JSON
// service with content-addressed caching, single-flight deduplication
// of concurrent identical requests, a bounded worker pool, and metrics.
//
//	lcn-serve -addr :8080 -scale 51
//
// Endpoints:
//
//	POST /v1/simulate   one flow+thermal probe at a fixed pressure
//	POST /v1/evaluate   Algorithm 2/3 lowest-feasible-P_sys evaluation
//	GET  /v1/metrics    counters, rates, and latency quantiles
//	GET  /healthz       readiness (503 once draining)
//
// On SIGTERM or SIGINT the server stops accepting connections, drains
// in-flight evaluations, writes a final metrics line to stdout, and
// exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lcn3d/internal/faults"
	"lcn3d/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lcn-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Int("scale", 0, "default grid size for requests without one (0 = full 101x101)")
	workers := flag.Int("workers", 0, "max concurrent evaluations (0 = NumCPU)")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-request deadline")
	resultCache := flag.Int("result-cache", 4096, "result cache entries")
	modelCache := flag.Int("model-cache", 16, "warm model bindings kept")
	faultSpec := flag.String("faults", "", "fault-injection plan, e.g. 'solver.bicgstab.breakdown=always;service.panic=first:1' (overrides "+faults.EnvVar+")")
	flag.Parse()

	// Fault injection for chaos drills: the flag wins over the LCN_FAULTS
	// environment variable. Never arm this in normal production serving.
	if *faultSpec != "" {
		if err := faults.Arm(*faultSpec); err != nil {
			log.Fatalf("-faults: %v", err)
		}
		log.Printf("fault injection ARMED: %s", *faultSpec)
	} else if spec, err := faults.ArmFromEnv(os.Getenv); err != nil {
		log.Fatalf("%s: %v", faults.EnvVar, err)
	} else if spec != "" {
		log.Printf("fault injection ARMED from %s: %s", faults.EnvVar, spec)
	}

	svc := service.New(service.Config{
		Scale:           *scale,
		Workers:         *workers,
		ResultCacheSize: *resultCache,
		ModelCacheSize:  *modelCache,
		DefaultTimeout:  *timeout,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (scale=%d workers=%d timeout=%v)",
		*addr, *scale, *workers, *timeout)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received, draining")

	// Stop accepting new connections; in-flight HTTP handlers get a
	// grace period before the listener force-closes.
	shutCtx, cancel := context.WithTimeout(context.Background(), *timeout+10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	// Then wait for every in-flight evaluation to finish.
	svc.Drain()

	final, err := json.Marshal(svc.Metrics())
	if err != nil {
		log.Fatalf("final metrics: %v", err)
	}
	os.Stdout.Write(append(final, '\n'))
	log.Printf("drained, exiting")
}
