// Command lcn-bench regenerates the tables and figures of the paper's
// evaluation section (Section 6).
//
// Examples:
//
//	lcn-bench -exp table2
//	lcn-bench -exp fig9 -scale 51
//	lcn-bench -exp table3 -scale 51 -v
//	lcn-bench -exp all -scale 31 -dir /tmp/lcn-figs
//	lcn-bench -exp table3 -scale 101 -full       # paper-scale run (hours)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"lcn3d/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lcn-bench: ")

	exp := flag.String("exp", "all", "experiment: table2 | fig5 | fig6 | fig9 | table3 | table4 | fig10 | extras | bench | all")
	scale := flag.Int("scale", 51, "grid size (101 = full contest scale)")
	full := flag.Bool("full", false, "paper-scale sweeps and SA schedules (slow)")
	seed := flag.Int64("seed", 1, "SA seed")
	dir := flag.String("dir", "", "directory for PPM image artifacts")
	baseline := flag.String("baseline", "", "committed BENCH json (or a directory: its newest BENCH_*.json) to regression-check -exp bench against (>20% NetworkEvaluation solve_iters_per_op growth fails)")
	verbose := flag.Bool("v", false, "log progress")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Full: *full, Seed: *seed, Out: os.Stdout, Dir: *dir}
	if *verbose {
		cfg.Logf = log.Printf
	}

	run := func(name string, fn func(experiments.Config) error) {
		t0 := time.Now()
		fmt.Printf("\n=== %s (scale %d, full=%v) ===\n", name, *scale, *full)
		if err := fn(cfg); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("--- %s done in %v ---\n", name, time.Since(t0).Round(time.Millisecond))
	}

	all := map[string]func(experiments.Config) error{
		"table2": experiments.Table2,
		"fig5":   experiments.Fig5,
		"fig6":   experiments.Fig6,
		"fig9": func(c experiments.Config) error {
			_, err := experiments.Fig9(c)
			return err
		},
		"table3": func(c experiments.Config) error {
			_, err := experiments.Table3(c)
			return err
		},
		"table4": func(c experiments.Config) error {
			_, err := experiments.Table4(c)
			return err
		},
		"fig10":  experiments.Fig10,
		"extras": experiments.Extras,
		"bench": func(c experiments.Config) error {
			return runMicrobench(c.Scale, *dir, *baseline, cfg.Logf)
		},
	}

	if *exp == "all" {
		for _, name := range []string{"table2", "fig5", "fig6", "fig9", "table3", "table4", "fig10"} {
			run(name, all[name])
		}
		return
	}
	fn, ok := all[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q", *exp)
	}
	run(*exp, fn)
}
