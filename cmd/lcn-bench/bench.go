package main

// In-process microbenchmarks for the simulator hot paths, written as a
// machine-readable BENCH_<date>.json so perf regressions (and wins) can
// be diffed across commits without parsing `go test -bench` text output.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"lcn3d/internal/cluster"
	"lcn3d/internal/core"
	"lcn3d/internal/grid"
	"lcn3d/internal/iccad"
	"lcn3d/internal/network"
	"lcn3d/internal/rm2"
	"lcn3d/internal/rm4"
	"lcn3d/internal/scenario"
	"lcn3d/internal/service"
	"lcn3d/internal/store"
	"lcn3d/internal/thermal"
)

// benchEntry is one timed benchmark in the JSON report.
type benchEntry struct {
	Name            string  `json:"name"`
	Ops             int     `json:"ops"`
	NsPerOp         int64   `json:"ns_per_op"`
	SolveItersPerOp float64 `json:"solve_iters_per_op"`
	WarmStartRate   float64 `json:"warm_start_rate"`
	PrecondBuilds   int     `json:"precond_builds"`
	// PrecondUpdates counts cheap per-scale multigrid refreshes — the
	// probes that used to force a full ILU rebuild (the precond churn).
	PrecondUpdates  int   `json:"precond_updates,omitempty"`
	AssemblyNsPerOp int64 `json:"assembly_ns_per_op"`
	// Multigrid carries the per-level V-cycle counters when the entry's
	// solves routed through the two-level preconditioner.
	Multigrid *mgCounters `json:"multigrid,omitempty"`
}

// mgCounters is the JSON shape of solver.MGStats: per-level multigrid
// work, recorded so iteration-count wins stay auditable against the
// per-cycle cost that buys them.
type mgCounters struct {
	VCycles        int64 `json:"v_cycles"`
	SmootherSweeps int64 `json:"smoother_sweeps"`
	SmootherBuilds int64 `json:"smoother_builds"`
	CoarseSolves   int64 `json:"coarse_solves"`
	CoarseIters    int64 `json:"coarse_iters"`
	Updates        int64 `json:"updates"`
}

// benchReport is the BENCH_<date>.json schema.
type benchReport struct {
	Date      string         `json:"date"`
	Commit    string         `json:"commit"`
	Scale     int            `json:"scale"`
	Results   []benchEntry   `json:"benchmarks"`
	Service   serviceBench   `json:"service"`
	Optimize  optimizeBench  `json:"optimize"`
	Transient transientBench `json:"transient"`
}

// transientBench times one implicit-Euler trace with a DVFS step and a
// pump ramp (three (dt, s) segments' worth of events): the headline is
// steps/s and the factorization count, which must stay at one per
// segment for the amortization to hold.
type transientBench struct {
	Steps          int     `json:"steps"`
	Segments       int     `json:"segments"`
	Factorizations int     `json:"factorizations"`
	StepsPerSec    float64 `json:"steps_per_sec"`
	NsPerStep      int64   `json:"ns_per_step"`
	SolveIters     int     `json:"solve_iters"`
}

// optimizeBench compares one serial SolveProblem1 run against the same
// problem with multiple exchange-coupled chains, recording wall-clock
// and the shared topology-cache counters of the multi-chain run.
type optimizeBench struct {
	SerialNs     int64   `json:"serial_ns"`
	MultiChainNs int64   `json:"multi_chain_ns"`
	Chains       int     `json:"chains"`
	Speedup      float64 `json:"speedup"`
	SerialEvals  int     `json:"serial_evals"`
	MultiEvals   int     `json:"multi_evals"`
	CacheHits    int64   `json:"topo_cache_hits"`
	CacheMisses  int64   `json:"topo_cache_misses"`
	CacheHitRate float64 `json:"topo_cache_hit_rate"`
	SerialWpump  float64 `json:"serial_wpump"`
	MultiWpump   float64 `json:"multi_wpump"`
}

// serviceBench records a small in-process exercise of the serving
// layer (internal/service): duplicate concurrent evaluations followed
// by a repeat, a persistent-store restart, and a 2-node forwarding
// exchange, so the report carries the cache, dedup, store, and cluster
// counters this commit achieves alongside the raw simulator timings.
type serviceBench struct {
	Requests    int64 `json:"requests"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	DedupHits   int64 `json:"dedup_hits"`
	Evaluations int64 `json:"evaluations"`

	// Store counters from a cold restart against the same directory:
	// the evaluation above is flushed, a fresh service reopens the
	// store, and the repeat must be a disk hit with zero solver runs.
	StoreHits    int64 `json:"store_hits"`
	StoreMisses  int64 `json:"store_misses"`
	RestartEvals int64 `json:"restart_evaluations"`
	StoreRecords int   `json:"store_records"`
	StoreFlushes int64 `json:"store_flushes"`

	// Cluster counters from a 2-node fleet answering the same request
	// on both nodes: one forward (or store fetch) and one compute.
	Forwards     int64 `json:"forwards"`
	StoreFetches int64 `json:"store_fetches"`
	PeerHits     int64 `json:"peer_hits"`
	FleetEvals   int64 `json:"fleet_evaluations"`
}

// finiteOrZero maps the +Inf of an infeasible evaluation to 0 so the
// report stays valid JSON.
func finiteOrZero(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}

// gitCommit resolves the current commit hash, "unknown" outside a git
// checkout (e.g. a copied tarball).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// serviceCounters runs duplicate concurrent evaluations plus one repeat
// through an in-process service and returns its counters.
func serviceCounters(scale int) (serviceBench, error) {
	svc := service.New(service.Config{Scale: scale})
	req := service.EvaluateRequest{
		CaseRef:   service.CaseRef{Case: 1},
		ModelSpec: service.ModelSpec{Model: "2rm", CoarseM: 4},
		Network:   service.NetworkSpec{Generator: "straight"},
	}
	const dup = 4
	errs := make([]error, dup)
	var wg sync.WaitGroup
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = svc.Evaluate(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return serviceBench{}, err
		}
	}
	if _, err := svc.Evaluate(context.Background(), req); err != nil {
		return serviceBench{}, err
	}
	svc.Drain()
	m := svc.Metrics()
	sb := serviceBench{
		Requests:    m.Requests,
		CacheHits:   m.CacheHits,
		CacheMisses: m.CacheMisses,
		DedupHits:   m.DedupHits,
		Evaluations: m.Evaluations,
	}
	if err := storeRestartCounters(scale, req, &sb); err != nil {
		return serviceBench{}, fmt.Errorf("store restart: %w", err)
	}
	if err := fleetCounters(scale, req, &sb); err != nil {
		return serviceBench{}, fmt.Errorf("fleet: %w", err)
	}
	return sb, nil
}

// storeRestartCounters evaluates once into a persistent store, drains
// (flushing the write batch), then cold-restarts the service on the
// same directory and repeats the request, recording the disk-hit
// counters the restart achieves.
func storeRestartCounters(scale int, req service.EvaluateRequest, sb *serviceBench) error {
	dir, err := os.MkdirTemp("", "lcn-bench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	svc := service.New(service.Config{Scale: scale, Store: st})
	if _, err := svc.Evaluate(context.Background(), req); err != nil {
		st.Close()
		return err
	}
	svc.Drain()
	if err := st.Close(); err != nil {
		return err
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	defer st2.Close()
	svc2 := service.New(service.Config{Scale: scale, Store: st2})
	if _, err := svc2.Evaluate(context.Background(), req); err != nil {
		return err
	}
	m := svc2.Metrics()
	sb.StoreHits = m.StoreHits
	sb.StoreMisses = m.StoreMisses
	sb.RestartEvals = m.Evaluations // 0 when the disk hit worked
	if m.Store != nil {
		sb.StoreRecords = m.Store.Records
		sb.StoreFlushes = m.Store.Flushes
	}
	return nil
}

// fleetCounters answers the same request on both nodes of a 2-node
// fleet: the owner computes, the other reaches it through the peer
// tier, so the report carries live forward/fetch counters.
func fleetCounters(scale int, req service.EvaluateRequest, sb *serviceBench) error {
	ls := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range ls {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer l.Close()
		ls[i] = l
		addrs[i] = l.Addr().String()
	}
	svcs := make([]*service.Service, 2)
	cls := make([]*cluster.Cluster, 2)
	for i := range svcs {
		cl, err := cluster.New(cluster.Options{Self: addrs[i], Peers: addrs})
		if err != nil {
			return err
		}
		defer cl.Stop()
		cls[i] = cl
		svcs[i] = service.New(service.Config{Scale: scale, Cluster: cl})
		srv := &http.Server{Handler: svcs[i].Handler()}
		go srv.Serve(ls[i])
		defer srv.Close()
	}
	for _, svc := range svcs {
		if _, err := svc.Evaluate(context.Background(), req); err != nil {
			return err
		}
	}
	for i, svc := range svcs {
		m := svc.Metrics()
		sb.PeerHits += m.PeerHits
		sb.FleetEvals += m.Evaluations
		st := cls[i].Stats()
		sb.Forwards += st.Forwards
		sb.StoreFetches += st.StoreFetches
	}
	return nil
}

// optimizeComparison runs the same small Problem 1 optimization twice —
// one chain, then several exchange-coupled chains — and records the
// wall-clock ratio and the multi-chain run's shared-cache hit rate. It
// runs at a fixed 21x21 scale regardless of the probe benchmarks' scale
// so the report stays cheap to regenerate.
func optimizeComparison() (optimizeBench, error) {
	const chains = 4
	bench, err := iccad.LoadScaled(1, grid.Dims{NX: 21, NY: 21})
	if err != nil {
		return optimizeBench{}, err
	}
	run := func(k int) (*core.Solution, int64, error) {
		opt := core.Options{
			Seed: 1, Chains: k, NumTrees: 2, BranchType: network.Branch2,
			Orientations: []network.Orientation{{Rotations: 0}, {Rotations: 2}},
			Stages: []core.Stage{
				{Iterations: 8, Step: 2, FixedPsys: true},
				{Iterations: 6, Step: 2},
			},
		}
		t0 := time.Now()
		sol, err := bench.SolveProblem1(opt)
		return sol, time.Since(t0).Nanoseconds(), err
	}
	serial, serialNs, err := run(1)
	if err != nil {
		return optimizeBench{}, err
	}
	multi, multiNs, err := run(chains)
	if err != nil {
		return optimizeBench{}, err
	}
	ob := optimizeBench{
		SerialNs: serialNs, MultiChainNs: multiNs, Chains: chains,
		SerialEvals: serial.Evals, MultiEvals: multi.Evals,
		CacheHits: multi.Cache.Hits, CacheMisses: multi.Cache.Misses,
		CacheHitRate: multi.Cache.HitRate(),
		SerialWpump:  finiteOrZero(serial.Eval.Wpump),
		MultiWpump:   finiteOrZero(multi.Eval.Wpump),
	}
	if multiNs > 0 {
		// Per-evaluation speedup: the multi-chain run does more total work
		// (chains x iterations), so raw wall-clock alone would misread.
		ob.Speedup = (float64(serialNs) / float64(serial.Evals)) /
			(float64(multiNs) / float64(multi.Evals))
	}
	return ob, nil
}

// transientTiming runs one 200-step transient trace on a fresh 2RM
// model: a DVFS power step at t=0.1 s and a pump-failure window at
// t=[0.2, 0.3) s, so the trace crosses three pump-pressure segments and
// the factorization count proves (or disproves) one-per-segment reuse.
func transientTiming(bench *iccad.Benchmark, nets []*network.Network) (transientBench, error) {
	mod, err := rm2.New(bench.Stk, nets, 4, thermal.Central)
	if err != nil {
		return transientBench{}, err
	}
	spec := &scenario.Spec{
		Dt: 2e-3, Steps: 200, Psys: 10e3,
		Power: []scenario.PowerEvent{{Kind: "dvfs", Layer: -1, T0: 0.1, Factor: 2}},
		Pump:  []scenario.PumpEvent{{Kind: "fail", T0: 0.2, T1: 0.3, Frac: 0.5}},
	}
	t0 := time.Now()
	res, err := scenario.Run(context.Background(), mod, spec, nil)
	if err != nil {
		return transientBench{}, err
	}
	elapsed := time.Since(t0)
	tb := transientBench{
		Steps:          res.Stats.Steps,
		Segments:       res.Stats.Segments,
		Factorizations: res.Stats.PrecondBuilds,
		NsPerStep:      elapsed.Nanoseconds() / int64(max(res.Stats.Steps, 1)),
		SolveIters:     res.Stats.SolveIters,
	}
	if s := elapsed.Seconds(); s > 0 {
		tb.StepsPerSec = float64(res.Stats.Steps) / s
	}
	return tb, nil
}

// benchProbes mirrors the probe cycle of the root bench_test.go warm
// benches: repeated probes on one model at nearby-but-distinct pressures.
var benchProbes = []float64{8e3, 10e3, 12e3, 16e3, 9e3, 20e3}

// timeOps runs op() repeatedly for at least minDur (and at least minOps
// times) and returns the op count and mean ns/op.
func timeOps(minDur time.Duration, minOps int, op func(i int) error) (int, int64, error) {
	t0 := time.Now()
	n := 0
	for n < minOps || time.Since(t0) < minDur {
		if err := op(n); err != nil {
			return n, 0, err
		}
		n++
	}
	return n, time.Since(t0).Nanoseconds() / int64(n), nil
}

func entryFromStats(name string, ops int, nsPerOp int64, st thermal.FactorStats) benchEntry {
	e := benchEntry{Name: name, Ops: ops, NsPerOp: nsPerOp,
		WarmStartRate: st.WarmStartRate(), PrecondBuilds: st.PrecondBuilds,
		PrecondUpdates: st.PrecondUpdates}
	if st.Probes > 0 {
		e.SolveItersPerOp = float64(st.SolveIters) / float64(ops)
		e.AssemblyNsPerOp = st.AssemblyNS / int64(ops)
	}
	if st.MG.VCycles > 0 {
		e.Multigrid = &mgCounters{
			VCycles:        st.MG.VCycles,
			SmootherSweeps: st.MG.SmootherSweeps,
			SmootherBuilds: st.MG.SmootherBuilds,
			CoarseSolves:   st.MG.CoarseSolves,
			CoarseIters:    st.MG.CoarseIters,
			Updates:        st.MG.Updates,
		}
	}
	return e
}

// accumulate folds a fresh model's counters into a cross-model total
// (the cold and evaluation benches build a new Factored per op).
func accumulate(dst *thermal.FactorStats, st thermal.FactorStats) {
	dst.Probes += st.Probes
	dst.WarmStarts += st.WarmStarts
	dst.SolveIters += st.SolveIters
	dst.PrecondBuilds += st.PrecondBuilds
	dst.PrecondUpdates += st.PrecondUpdates
	dst.AssemblyNS += st.AssemblyNS
	dst.MG.Add(st.MG)
}

// maxPrecondBuildsPerOp is the churn regression bound on the
// NetworkEvaluation bench: one evaluation runs a few dozen pressure
// probes, and the static/flow split must amortize the preconditioner
// across them the way warm starts already are. The historical churn bug
// rebuilt ~7x per op; the fixed path measures ~1 build per op (plus
// cheap multigrid updates), so 3 leaves headroom without letting the
// regression back in.
const maxPrecondBuildsPerOp = 3.0

// itersRegressionFactor fails a -baseline comparison when
// NetworkEvaluation solve_iters_per_op grows past baseline times this
// (the CI perf-smoke threshold: >20% regression).
const itersRegressionFactor = 1.2

// benchFileName names a report file. The short commit joins the date so
// two same-day runs from different commits cannot overwrite each other;
// outside a git checkout (commit "unknown") the name is the plain date.
func benchFileName(report benchReport) string {
	name := "BENCH_" + report.Date
	if c := report.Commit; c != "" && c != "unknown" {
		if len(c) > 7 {
			c = c[:7]
		}
		name += "-" + c
	}
	return name + ".json"
}

// newestBenchFile resolves a directory baseline to its most recently
// written BENCH_*.json (commit-suffixed names do not sort by recency,
// so modification time decides).
func newestBenchFile(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	newest, best := "", time.Time{}
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			continue
		}
		if newest == "" || fi.ModTime().After(best) {
			newest, best = m, fi.ModTime()
		}
	}
	if newest == "" {
		return "", fmt.Errorf("no BENCH_*.json in %s", dir)
	}
	return newest, nil
}

// checkBaseline compares the fresh report against a committed baseline
// JSON and errors on a NetworkEvaluation iteration-count regression.
// A directory path selects its newest BENCH_*.json.
func checkBaseline(report benchReport, path string, logf func(string, ...any)) error {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		resolved, err := newestBenchFile(path)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		path = resolved
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	find := func(r benchReport, name string) *benchEntry {
		for i := range r.Results {
			if r.Results[i].Name == name {
				return &r.Results[i]
			}
		}
		return nil
	}
	const name = "NetworkEvaluation"
	want := find(base, name)
	got := find(report, name)
	if want == nil || got == nil {
		return fmt.Errorf("baseline: %s missing from %s", name,
			map[bool]string{true: path, false: "fresh report"}[got != nil])
	}
	if base.Scale != report.Scale {
		return fmt.Errorf("baseline: scale %d does not match run scale %d", base.Scale, report.Scale)
	}
	if logf != nil {
		logf("baseline %s: %s %.1f iters/op vs %.1f committed",
			path, name, got.SolveItersPerOp, want.SolveItersPerOp)
	}
	if want.SolveItersPerOp > 0 && got.SolveItersPerOp > itersRegressionFactor*want.SolveItersPerOp {
		return fmt.Errorf("perf regression: %s solve_iters_per_op %.1f > %.2fx baseline %.1f",
			name, got.SolveItersPerOp, itersRegressionFactor, want.SolveItersPerOp)
	}
	return nil
}

// runMicrobench times the RM2/RM4/NetworkEvaluation hot paths at the
// given scale and writes BENCH_<date>.json into dir (default "."). A
// non-empty baseline names a committed report to regression-check the
// fresh numbers against (see checkBaseline).
func runMicrobench(scale int, dir, baseline string, logf func(string, ...any)) error {
	bench, err := iccad.LoadScaled(1, grid.Dims{NX: scale, NY: scale})
	if err != nil {
		return err
	}
	n := network.Straight(bench.Stk.Dims, grid.SideWest, 1)
	nets := make([]*network.Network, len(bench.Stk.ChannelLayers()))
	for i := range nets {
		nets[i] = n
	}
	const minDur = 2 * time.Second
	report := benchReport{
		Date:   time.Now().Format("2006-01-02"),
		Commit: gitCommit(),
		Scale:  scale,
	}
	add := func(name string, ops int, nsPerOp int64, st thermal.FactorStats) {
		report.Results = append(report.Results, entryFromStats(name, ops, nsPerOp, st))
		if logf != nil {
			logf("%-24s %10d ns/op  %6.1f solve iters/op  (%d ops)",
				name, nsPerOp, float64(st.SolveIters)/float64(max(ops, 1)), ops)
		}
	}

	// Warm: repeated probes on one shared model (the SA access pattern).
	m4, err := rm4.New(bench.Stk, nets, thermal.Central)
	if err != nil {
		return err
	}
	ops, ns, err := timeOps(minDur, len(benchProbes), func(i int) error {
		_, err := m4.Simulate(benchProbes[i%len(benchProbes)])
		return err
	})
	if err != nil {
		return fmt.Errorf("RM4Simulate: %w", err)
	}
	add("RM4Simulate", ops, ns, m4.FactorStats())

	// Cold: a fresh model per probe (the unamortized baseline).
	var coldStats thermal.FactorStats
	ops, ns, err = timeOps(minDur, 2, func(i int) error {
		m, err := rm4.New(bench.Stk, nets, thermal.Central)
		if err != nil {
			return err
		}
		if _, err := m.Simulate(benchProbes[i%len(benchProbes)]); err != nil {
			return err
		}
		accumulate(&coldStats, m.FactorStats())
		return nil
	})
	if err != nil {
		return fmt.Errorf("RM4SimulateCold: %w", err)
	}
	add("RM4SimulateCold", ops, ns, coldStats)

	m2, err := rm2.New(bench.Stk, nets, 4, thermal.Central)
	if err != nil {
		return err
	}
	ops, ns, err = timeOps(minDur, len(benchProbes), func(i int) error {
		_, err := m2.Simulate(benchProbes[i%len(benchProbes)])
		return err
	})
	if err != nil {
		return fmt.Errorf("RM2Simulate: %w", err)
	}
	add("RM2Simulate/m=4", ops, ns, m2.FactorStats())

	// Algorithm 2 end to end: fresh network, a few dozen probes inside.
	// Timed once per preconditioning strategy: the default entry is the
	// auto policy the evaluation stack ships with, and the ilu0/multigrid
	// variants pin both sides of the comparison in the same report.
	networkEval := func() (int, int64, thermal.FactorStats, error) {
		var stats thermal.FactorStats
		ops, ns, err := timeOps(minDur, 2, func(i int) error {
			mod, err := rm2.New(bench.Stk, nets, 4, thermal.Central)
			if err != nil {
				return err
			}
			if _, err := core.EvaluatePumpMin(context.Background(), core.Memo(mod.Simulate),
				bench.DeltaTStar, bench.TmaxStar, core.SearchOptions{}); err != nil {
				return err
			}
			accumulate(&stats, mod.FactorStats())
			return nil
		})
		return ops, ns, stats, err
	}
	ops, ns, evalStats, err := networkEval()
	if err != nil {
		return fmt.Errorf("NetworkEvaluation: %w", err)
	}
	add("NetworkEvaluation", ops, ns, evalStats)
	if perOp := float64(evalStats.PrecondBuilds) / float64(max(ops, 1)); perOp > maxPrecondBuildsPerOp {
		return fmt.Errorf("precond churn regression: %.1f precond_builds/op on NetworkEvaluation (bound %.1f) — rebuilds are not amortized across pressure probes",
			perOp, maxPrecondBuildsPerOp)
	}
	for _, strat := range []thermal.PrecondStrategy{thermal.PrecondILU, thermal.PrecondMG} {
		thermal.SetPrecondStrategy(strat)
		ops, ns, st, err := networkEval()
		thermal.SetPrecondStrategy(thermal.PrecondAuto)
		if err != nil {
			return fmt.Errorf("NetworkEvaluation/%v: %w", strat, err)
		}
		add(fmt.Sprintf("NetworkEvaluation/%v", strat), ops, ns, st)
	}

	report.Transient, err = transientTiming(bench, nets)
	if err != nil {
		return fmt.Errorf("transient timing: %w", err)
	}
	if logf != nil {
		logf("transient: %d steps in %d segments, %d factorizations, %.0f steps/s",
			report.Transient.Steps, report.Transient.Segments,
			report.Transient.Factorizations, report.Transient.StepsPerSec)
	}

	report.Optimize, err = optimizeComparison()
	if err != nil {
		return fmt.Errorf("optimize comparison: %w", err)
	}
	if logf != nil {
		logf("optimize: serial %d ms, %d chains %d ms (%.2fx), cache %.0f%% hit",
			report.Optimize.SerialNs/1e6, report.Optimize.Chains,
			report.Optimize.MultiChainNs/1e6, report.Optimize.Speedup,
			100*report.Optimize.CacheHitRate)
	}

	report.Service, err = serviceCounters(scale)
	if err != nil {
		return fmt.Errorf("service counters: %w", err)
	}
	if logf != nil {
		logf("service: requests=%d cache_hits=%d dedup_hits=%d evaluations=%d",
			report.Service.Requests, report.Service.CacheHits,
			report.Service.DedupHits, report.Service.Evaluations)
	}

	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, benchFileName(report))
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if baseline != "" {
		return checkBaseline(report, baseline, logf)
	}
	return nil
}
