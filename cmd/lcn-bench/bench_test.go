package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestBenchFileName is satellite 1 of the jobs PR: two same-day runs
// from different commits must write different files instead of
// overwriting each other.
func TestBenchFileName(t *testing.T) {
	cases := []struct {
		commit string
		want   string
	}{
		{"0123456789abcdef0123456789abcdef01234567", "BENCH_2026-08-08-0123456.json"},
		{"abc1234", "BENCH_2026-08-08-abc1234.json"},
		{"unknown", "BENCH_2026-08-08.json"},
		{"", "BENCH_2026-08-08.json"},
	}
	for _, c := range cases {
		got := benchFileName(benchReport{Date: "2026-08-08", Commit: c.commit})
		if got != c.want {
			t.Errorf("commit %q: file %q, want %q", c.commit, got, c.want)
		}
	}
	a := benchFileName(benchReport{Date: "2026-08-08", Commit: "aaaaaaaa"})
	b := benchFileName(benchReport{Date: "2026-08-08", Commit: "bbbbbbbb"})
	if a == b {
		t.Fatalf("same-day reports from different commits collide on %q", a)
	}
}

func writeReport(t *testing.T, dir, name string, r benchReport, mod time.Time) string {
	t.Helper()
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, mod, mod); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCheckBaselineDirectoryResolvesNewest: a directory baseline picks
// the most recently written BENCH_*.json — by modification time, since
// commit-suffixed names do not sort chronologically.
func TestCheckBaselineDirectoryResolvesNewest(t *testing.T) {
	dir := t.TempDir()
	entry := func(iters float64) []benchEntry {
		return []benchEntry{{Name: "NetworkEvaluation", SolveItersPerOp: iters}}
	}
	now := time.Now()
	// The older file would FAIL the check (tiny baseline, huge growth);
	// the newer one passes. Resolution must pick the newer.
	writeReport(t, dir, "BENCH_2026-08-07-zzzzzzz.json",
		benchReport{Scale: 21, Results: entry(1)}, now.Add(-time.Hour))
	writeReport(t, dir, "BENCH_2026-08-08-aaaaaaa.json",
		benchReport{Scale: 21, Results: entry(100)}, now)

	fresh := benchReport{Scale: 21, Results: entry(101)}
	if err := checkBaseline(fresh, dir, t.Logf); err != nil {
		t.Fatalf("directory baseline should resolve to the newest file: %v", err)
	}

	// Against the old file explicitly, the regression trips — proving the
	// directory path really selected the newer baseline above.
	if err := checkBaseline(fresh, filepath.Join(dir, "BENCH_2026-08-07-zzzzzzz.json"), t.Logf); err == nil {
		t.Fatal("explicit old baseline should report a regression")
	}

	if err := checkBaseline(fresh, t.TempDir(), t.Logf); err == nil ||
		!strings.Contains(err.Error(), "no BENCH_") {
		t.Fatalf("empty directory: err = %v, want 'no BENCH_*.json'", err)
	}
}
