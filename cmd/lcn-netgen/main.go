// Command lcn-netgen generates cooling networks, checks them against the
// design rules, and prints layout art plus flow statistics.
//
// Examples:
//
//	lcn-netgen -grid 51 -net tree -trees 2 -type 4 -b1 0.3 -b2 0.6
//	lcn-netgen -grid 101 -net straight -stats -psys 12980 -hc 200e-6
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"lcn3d/internal/flow"
	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/report"
	"lcn3d/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lcn-netgen: ")

	size := flag.Int("grid", 51, "grid size n (n x n basic cells)")
	kind := flag.String("net", "tree", "network: straight | tree | mesh | serpentine | comb")
	trees := flag.Int("trees", 2, "tree count")
	typ := flag.Int("type", 4, "branch type: 2, 4 or 8 leaves")
	b1 := flag.Float64("b1", 0.35, "first branch fraction")
	b2 := flag.Float64("b2", 0.65, "second branch fraction")
	rot := flag.Int("rot", 0, "quarter turns counter-clockwise (0-3)")
	mirror := flag.Bool("mirror", false, "mirror in x before rotating")
	stats := flag.Bool("stats", false, "solve the flow field and print statistics")
	psys := flag.Float64("psys", 10e3, "pressure for -stats, Pa")
	hc := flag.Float64("hc", 200e-6, "channel height for -stats, m")
	quiet := flag.Bool("q", false, "suppress layout art")
	flowMap := flag.String("flowmap", "", "with -stats, write a coolant speed map PPM to this path")
	flag.Parse()

	d := grid.Dims{NX: *size, NY: *size}
	var net *network.Network
	var err error
	switch *kind {
	case "straight":
		net = network.Straight(d, grid.SideWest, 1)
	case "mesh":
		net = network.Mesh(d, 1, 4)
	case "serpentine":
		net = network.Serpentine(d)
	case "comb":
		net = network.Comb(d, 1)
	case "tree":
		var bt network.BranchType
		switch *typ {
		case 2:
			bt = network.Branch2
		case 4:
			bt = network.Branch4
		case 8:
			bt = network.Branch8
		default:
			log.Fatalf("branch type %d not in {2,4,8}", *typ)
		}
		spec := network.UniformTreeSpec(d, *trees, bt, *b1, *b2)
		net, err = network.Tree(d, spec)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown network kind %q", *kind)
	}
	net = network.Orientation{Rotations: *rot, Mirror: *mirror}.Apply(net)

	if !*quiet {
		fmt.Print(net.String())
	}
	fmt.Printf("grid %v, liquid cells %d (%.1f%% of chip)\n",
		net.Dims, net.NumLiquid(), 100*float64(net.NumLiquid())/float64(net.Dims.N()))
	if errs := net.Check(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Printf("DRC violation: %v\n", e)
		}
	} else {
		fmt.Println("DRC clean")
	}
	if st := net.StagnantCells(); len(st) > 0 {
		fmt.Printf("warning: %d stagnant liquid cells\n", len(st))
	}

	if *stats {
		g := flow.Geometry{Pitch: 100e-6, ChannelWidth: 100e-6, ChannelHeight: *hc, Coolant: units.Water}
		s, err := flow.Solve(net, g, *psys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P_sys %.2f kPa: Q_sys %.4f mL/s, R_sys %.3g Pa·s/m³, W_pump %.4f mW, max Re %.0f\n",
			*psys/1e3, s.Qsys*1e6, s.Rsys, s.Wpump*1e3, s.MaxReynolds(998))
		if *flowMap != "" {
			hm := &report.Heatmap{Dims: net.Dims, V: s.SpeedField()}
			f, err := os.Create(*flowMap)
			if err != nil {
				log.Fatal(err)
			}
			if err := hm.WritePPM(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote coolant speed map to %s\n", *flowMap)
		}
	}
}
