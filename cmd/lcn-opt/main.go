// Command lcn-opt runs the full optimization flow (Algorithm 1) on an
// ICCAD benchmark case: Problem 1 (pumping power minimization) or
// Problem 2 (thermal gradient minimization), and compares the result
// against the straight-channel baseline.
//
// Examples:
//
//	lcn-opt -case 1 -problem 1 -scale 51
//	lcn-opt -case 2 -problem 2 -scale 101 -full      # paper-scale SA schedule
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"lcn3d"
	"lcn3d/internal/core"
	"lcn3d/internal/network"
	"lcn3d/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lcn-opt: ")

	caseID := flag.Int("case", 1, "ICCAD 2015 benchmark case (1-5)")
	problem := flag.Int("problem", 1, "1 = pumping power min, 2 = thermal gradient min")
	scale := flag.Int("scale", 51, "grid size (101 = full contest scale)")
	full := flag.Bool("full", false, "use the paper's full SA schedule (slow)")
	seed := flag.Int64("seed", 1, "SA random seed")
	chains := flag.Int("chains", 0, "parallel SA chains per stage (0 = stage rounds)")
	exchange := flag.Int("exchange", 0, "iterations between chain best-state exchanges (0 = default, negative = independent chains)")
	trees := flag.Int("trees", 0, "tree count (0 = auto)")
	verbose := flag.Bool("v", false, "log SA progress")
	save := flag.String("save", "", "write the optimized network to this file (lcn network format)")
	flag.Parse()

	bench, err := lcn3d.LoadBenchmarkScaled(*caseID, *scale)
	if err != nil {
		log.Fatal(err)
	}
	opt := lcn3d.Options{Seed: *seed, NumTrees: *trees, Chains: *chains, ExchangeEvery: *exchange}
	if *verbose {
		opt.Logf = log.Printf
	}
	if *full {
		if *problem == 1 {
			opt.Stages = []lcn3d.Stage{
				{Iterations: 60, Rounds: 8, Step: 8, FixedPsys: true},
				{Iterations: 40, Rounds: 4, Step: 8},
				{Iterations: 40, Rounds: 2, Step: 2},
				{Iterations: 30, Rounds: 1, Step: 2, Use4RM: true},
			}
		} else {
			opt.Stages = []lcn3d.Stage{
				{Iterations: 80, Rounds: 8, Step: 8, GroupSize: 5},
				{Iterations: 20, Rounds: 2, Step: 2, GroupSize: 5},
				{Iterations: 20, Rounds: 1, Step: 2, Use4RM: true, GroupSize: 5},
			}
		}
	}

	fmt.Printf("case %d, problem %d, grid %dx%d, power %.3f W\n",
		*caseID, *problem, *scale, *scale, bench.Stk.TotalPower())
	fmt.Printf("constraints: ΔT* = %.2f K, T*max = %.2f K", bench.DeltaTStar, bench.TmaxStar)
	if *problem == 2 {
		fmt.Printf(", W*pump = %.3f mW", bench.WpumpStar*1e3)
	}
	fmt.Println()

	t0 := time.Now()
	base, err := lcn3d.BestStraightBaseline(bench, *problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (straight, best of 4 directions) in %v\n", time.Since(t0).Round(time.Millisecond))

	t0 = time.Now()
	var sol *lcn3d.Solution
	if *problem == 1 {
		sol, err = lcn3d.OptimizePumpingPower(bench, opt)
	} else {
		sol, err = lcn3d.OptimizeThermalGradient(bench, opt)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SA finished in %v (%d evaluations, orientation %v)\n",
		time.Since(t0).Round(time.Millisecond), sol.Evals, sol.Orient)
	fmt.Printf("chains: %d, exchanges: %d, adoptions: %d, topology cache: %d hits / %d misses (%.0f%%)\n",
		sol.Chains, sol.Exchanges, sol.Adoptions,
		sol.Cache.Hits, sol.Cache.Misses, 100*sol.Cache.HitRate())

	tb := &report.Table{
		Header: []string{"design", "Psys (kPa)", "Tmax (K)", "ΔT (K)", "Wpump (mW)", "feasible"},
	}
	row := func(name string, ev core.EvalResult) {
		tb.AddRow(name,
			report.F(ev.Psys/1e3, 2),
			report.F(evalTmax(ev), 1),
			report.F(ev.DeltaT, 2),
			report.F(ev.Wpump*1e3, 3),
			fmt.Sprintf("%v", ev.Feasible))
	}
	row("straight baseline", base.Eval)
	row("tree network (ours)", sol.Eval)
	if err := tb.Write(log.Writer()); err != nil {
		log.Fatal(err)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := network.Write(f, sol.Net); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote optimized network to %s\n", *save)
	}

	if base.Eval.Feasible && sol.Eval.Feasible {
		if *problem == 1 {
			fmt.Printf("pumping power saving vs baseline: %.2f%%\n",
				100*(1-sol.Eval.Wpump/base.Eval.Wpump))
		} else {
			fmt.Printf("thermal gradient reduction vs baseline: %.2f%%\n",
				100*(1-sol.Eval.DeltaT/base.Eval.DeltaT))
		}
	}
}

func evalTmax(ev core.EvalResult) float64 {
	if ev.Out == nil {
		return 0
	}
	return ev.Out.Tmax
}
