// Command lcn-opt runs the full optimization flow (Algorithm 1) on an
// ICCAD benchmark case: Problem 1 (pumping power minimization) or
// Problem 2 (thermal gradient minimization), and compares the result
// against the straight-channel baseline.
//
// Examples:
//
//	lcn-opt -case 1 -problem 1 -scale 51
//	lcn-opt -case 2 -problem 2 -scale 101 -full      # paper-scale SA schedule
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"lcn3d"
	"lcn3d/internal/core"
	"lcn3d/internal/network"
	"lcn3d/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lcn-opt: ")

	caseID := flag.Int("case", 1, "ICCAD 2015 benchmark case (1-5)")
	problem := flag.Int("problem", 1, "1 = pumping power min, 2 = thermal gradient min")
	scale := flag.Int("scale", 51, "grid size (101 = full contest scale)")
	full := flag.Bool("full", false, "use the paper's full SA schedule (slow)")
	seed := flag.Int64("seed", 1, "SA random seed")
	chains := flag.Int("chains", 0, "parallel SA chains per stage (0 = stage rounds)")
	exchange := flag.Int("exchange", 0, "iterations between chain best-state exchanges (0 = default, negative = independent chains)")
	trees := flag.Int("trees", 0, "tree count (0 = auto)")
	verbose := flag.Bool("v", false, "log SA progress")
	save := flag.String("save", "", "write the optimized network to this file (lcn network format)")
	checkpoint := flag.String("checkpoint", "", "periodically write a resumable SA checkpoint to this file (atomic rename; removed on success)")
	resume := flag.Bool("resume", false, "resume from the -checkpoint file if it exists (requires identical case/problem/seed options)")
	flag.Parse()
	if *resume && *checkpoint == "" {
		log.Fatal("-resume requires -checkpoint")
	}

	bench, err := lcn3d.LoadBenchmarkScaled(*caseID, *scale)
	if err != nil {
		log.Fatal(err)
	}
	opt := lcn3d.Options{Seed: *seed, NumTrees: *trees, Chains: *chains, ExchangeEvery: *exchange}
	if *verbose {
		opt.Logf = log.Printf
	}
	if *full {
		if *problem == 1 {
			opt.Stages = []lcn3d.Stage{
				{Iterations: 60, Rounds: 8, Step: 8, FixedPsys: true},
				{Iterations: 40, Rounds: 4, Step: 8},
				{Iterations: 40, Rounds: 2, Step: 2},
				{Iterations: 30, Rounds: 1, Step: 2, Use4RM: true},
			}
		} else {
			opt.Stages = []lcn3d.Stage{
				{Iterations: 80, Rounds: 8, Step: 8, GroupSize: 5},
				{Iterations: 20, Rounds: 2, Step: 2, GroupSize: 5},
				{Iterations: 20, Rounds: 1, Step: 2, Use4RM: true, GroupSize: 5},
			}
		}
	}

	fmt.Printf("case %d, problem %d, grid %dx%d, power %.3f W\n",
		*caseID, *problem, *scale, *scale, bench.Stk.TotalPower())
	fmt.Printf("constraints: ΔT* = %.2f K, T*max = %.2f K", bench.DeltaTStar, bench.TmaxStar)
	if *problem == 2 {
		fmt.Printf(", W*pump = %.3f mW", bench.WpumpStar*1e3)
	}
	fmt.Println()

	t0 := time.Now()
	base, err := lcn3d.BestStraightBaseline(bench, *problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (straight, best of 4 directions) in %v\n", time.Since(t0).Round(time.Millisecond))

	if *checkpoint != "" {
		opt.Checkpoint = func(cp *core.SolveCheckpoint) {
			if err := writeCheckpoint(*checkpoint, cp); err != nil {
				log.Printf("checkpoint %s: %v", *checkpoint, err)
			}
		}
	}
	if *resume {
		cp, err := readCheckpoint(*checkpoint)
		if err != nil {
			log.Fatalf("-resume: %v", err)
		}
		if cp != nil {
			fmt.Printf("resuming from %s (stage %d, %d evaluations done)\n",
				*checkpoint, cp.Stage, cp.TotalEvals)
			opt.Resume = cp
		}
	}

	t0 = time.Now()
	runOnce := func() (*lcn3d.Solution, error) {
		if *problem == 1 {
			return lcn3d.OptimizePumpingPower(bench, opt)
		}
		return lcn3d.OptimizeThermalGradient(bench, opt)
	}
	sol, err := runOnce()
	var mismatch *core.CheckpointMismatchError
	if errors.As(err, &mismatch) {
		// The checkpoint was written under different options; a silent
		// divergent resume would be worse than redoing the work.
		log.Printf("checkpoint incompatible (%s), restarting from scratch", mismatch.Reason)
		opt.Resume = nil
		sol, err = runOnce()
	}
	if err != nil {
		log.Fatal(err)
	}
	if *checkpoint != "" {
		// The run is complete; a leftover checkpoint would make the next
		// -resume replay a finished run.
		if err := os.Remove(*checkpoint); err != nil && !os.IsNotExist(err) {
			log.Printf("remove %s: %v", *checkpoint, err)
		}
	}
	fmt.Printf("SA finished in %v (%d evaluations, orientation %v)\n",
		time.Since(t0).Round(time.Millisecond), sol.Evals, sol.Orient)
	fmt.Printf("chains: %d, exchanges: %d, adoptions: %d, topology cache: %d hits / %d misses (%.0f%%)\n",
		sol.Chains, sol.Exchanges, sol.Adoptions,
		sol.Cache.Hits, sol.Cache.Misses, 100*sol.Cache.HitRate())

	tb := &report.Table{
		Header: []string{"design", "Psys (kPa)", "Tmax (K)", "ΔT (K)", "Wpump (mW)", "feasible"},
	}
	row := func(name string, ev core.EvalResult) {
		tb.AddRow(name,
			report.F(ev.Psys/1e3, 2),
			report.F(evalTmax(ev), 1),
			report.F(ev.DeltaT, 2),
			report.F(ev.Wpump*1e3, 3),
			fmt.Sprintf("%v", ev.Feasible))
	}
	row("straight baseline", base.Eval)
	row("tree network (ours)", sol.Eval)
	if err := tb.Write(log.Writer()); err != nil {
		log.Fatal(err)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := network.Write(f, sol.Net); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote optimized network to %s\n", *save)
	}

	if base.Eval.Feasible && sol.Eval.Feasible {
		if *problem == 1 {
			fmt.Printf("pumping power saving vs baseline: %.2f%%\n",
				100*(1-sol.Eval.Wpump/base.Eval.Wpump))
		} else {
			fmt.Printf("thermal gradient reduction vs baseline: %.2f%%\n",
				100*(1-sol.Eval.DeltaT/base.Eval.DeltaT))
		}
	}
}

// writeCheckpoint persists a checkpoint atomically: write to a temp
// file in the same directory, fsync, rename. A crash mid-write leaves
// the previous checkpoint intact instead of a torn file.
func writeCheckpoint(path string, cp *core.SolveCheckpoint) error {
	blob, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// readCheckpoint loads a checkpoint file; a missing file is not an
// error (nil, nil) so -resume doubles as "resume if interrupted".
func readCheckpoint(path string) (*core.SolveCheckpoint, error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var cp core.SolveCheckpoint
	if err := json.Unmarshal(blob, &cp); err != nil {
		return nil, fmt.Errorf("corrupt checkpoint: %w", err)
	}
	return &cp, nil
}

func evalTmax(ev core.EvalResult) float64 {
	if ev.Out == nil {
		return 0
	}
	return ev.Out.Tmax
}
